"""Low-complexity SRP-PHAT via Nyquist-rate GCC sampling.

Reimplementation of the idea the paper credits for its "~10x latency boost
and ~50% coefficients reduce" (Dietzen, De Sena & van Waterschoot, WASPAA
2021): the SRP map is a sampling of band-limited cross-correlation
functions, so instead of steering the full cross-power spectrum for every
candidate direction (O(n_freq) per direction per pair), each pair's GCC is
computed **once** per frame at the Nyquist lag rate, truncated to the
physically feasible lag range ``|tau| <= aperture / c``, and evaluated at
the fractional TDOA of each direction with a short windowed-sinc
interpolation (O(n_taps) per direction per pair).

The result is mathematically equivalent up to the sinc truncation error,
which is controlled by ``n_interp_taps``.
"""

from __future__ import annotations

import numpy as np

from repro.acoustics.geometry import SPEED_OF_SOUND
from repro.ssl.doa import DoaGrid
from repro.ssl.gcc import SpectraCache, gcc_phat_spectra
from repro.ssl.refine import GridPyramid, RefineConfig, RefineState
from repro.ssl.srp import (
    SrpResult,
    _batch_peaks,
    _check_frames,
    _CoarseToFineMixin,
    _peak,
    mic_pairs,
    pair_tdoas,
)

__all__ = ["FastSrpPhat"]


class FastSrpPhat(_CoarseToFineMixin):
    """Nyquist-sampled SRP-PHAT localizer (drop-in for :class:`SrpPhat`).

    Parameters
    ----------
    mic_positions, fs, grid, n_fft, c:
        As in :class:`repro.ssl.srp.SrpPhat`.
    n_interp_taps:
        Even number of windowed-sinc taps per fractional-lag read; larger is
        closer to exact.
    refine, spectra_dtype:
        Coarse-to-fine defaults, as in :class:`repro.ssl.srp.SrpPhat`.
    """

    def __init__(
        self,
        mic_positions: np.ndarray,
        fs: float,
        *,
        grid: DoaGrid | None = None,
        n_fft: int = 1024,
        c: float = SPEED_OF_SOUND,
        n_interp_taps: int = 8,
        refine: RefineConfig | None = None,
        spectra_dtype: np.dtype | type = np.float32,
    ) -> None:
        if fs <= 0:
            raise ValueError("fs must be positive")
        if n_fft < 64 or n_fft & (n_fft - 1):
            raise ValueError("n_fft must be a power of two >= 64")
        if n_interp_taps < 2 or n_interp_taps % 2:
            raise ValueError("n_interp_taps must be an even integer >= 2")
        self.positions = np.asarray(mic_positions, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3 or self.positions.shape[0] < 2:
            raise ValueError("mic_positions must be (n_mics >= 2, 3)")
        self.fs = float(fs)
        self.grid = grid or DoaGrid()
        self.n_fft = int(n_fft)
        self.c = float(c)
        self.n_interp_taps = int(n_interp_taps)
        self.pairs = mic_pairs(self.positions.shape[0])
        self._directions = self.grid.directions()

        tdoas = pair_tdoas(self.positions, self._directions, c=self.c)  # (P, G) seconds
        lags = tdoas * self.fs
        # Feasible lag span per pair (plus interpolation guard).
        half_span = int(np.ceil(np.abs(lags).max())) + n_interp_taps
        if 2 * half_span + 1 > self.n_fft:
            raise ValueError("array aperture too large for n_fft; increase n_fft")
        self._half_span = half_span
        base = np.floor(lags).astype(np.int64)
        frac = lags - base
        taps = np.arange(-(n_interp_taps // 2 - 1), n_interp_taps // 2 + 1)  # length n_taps
        # Windowed-sinc read weights, shape (P, G, T).
        arg = taps[None, None, :] - frac[:, :, None]
        window = 0.5 + 0.5 * np.cos(np.pi * arg / (n_interp_taps // 2 + 1))
        self._weights = np.sinc(arg) * np.clip(window, 0.0, None)
        # Gather indices into the centred lag window, shape (P, G, T).
        self._indices = base[:, :, None] + taps[None, None, :] + half_span
        # Dense (n_pairs * n_lags, n_dirs) read matrix for the batched path
        # (scattered interpolation weights), built lazily on first use.
        self._read_matrix: np.ndarray | None = None
        self.refine = refine
        self.spectra_dtype = np.dtype(spectra_dtype)
        self._typed_read: dict[str, np.ndarray] = {}
        self._coarse_read: dict[tuple[int, str], np.ndarray] = {}

    @property
    def n_coefficients(self) -> int:
        """Stored interpolation coefficients (real), the E4 coefficient count."""
        return int(self._weights.size)

    def _read_matrix_typed(self, dtype: np.dtype) -> np.ndarray:
        """Dense windowed-sinc read matrix ``(P * n_lags, G)`` in dtype."""
        if self._read_matrix is None:
            # Scatter the windowed-sinc weights into a dense (P * n_lags, G)
            # matrix so all pairs x directions x frames reduce to one matmul.
            h = self._half_span
            n_pairs, n_lags = len(self.pairs), 2 * h + 1
            dense = np.zeros((n_pairs, n_lags, self.grid.size))
            p_idx = np.arange(n_pairs)[:, None, None]
            g_idx = np.arange(self.grid.size)[None, :, None]
            np.add.at(dense, (p_idx, self._indices, g_idx), self._weights)
            self._read_matrix = dense.reshape(n_pairs * n_lags, self.grid.size)
        key = np.dtype(dtype).name
        if key not in self._typed_read:
            self._typed_read[key] = np.ascontiguousarray(self._read_matrix, dtype=dtype)
        return self._typed_read[key]

    def _coarse_tensor(self, pyramid: GridPyramid, dtype: np.dtype) -> np.ndarray:
        """Precomputed per-level read tensor (coarse-grid column subset)."""
        key = (pyramid.az_stride * 100000 + pyramid.el_stride, np.dtype(dtype).name)
        if key not in self._coarse_read:
            self._coarse_read[key] = np.ascontiguousarray(
                self._read_matrix_typed(dtype)[:, pyramid.coarse_flat]
            )
        return self._coarse_read[key]

    def _cc_flat(self, cache: SpectraCache) -> np.ndarray:
        """Centred lag windows of every pair's GCC, ``(T, P * n_lags)``."""
        cc = cache.gcc(self.n_fft, self.pairs)  # (T, P, n_fft)
        h = self._half_span
        cc_win = np.concatenate([cc[..., -h:], cc[..., : h + 1]], axis=-1)
        return cc_win.reshape(cache.n_frames, -1)

    def _map_from_cache(self, cache: SpectraCache) -> np.ndarray:
        """Dense sweep from a shared cache (dtype follows the cache)."""
        flat = self._cc_flat(cache)
        power = flat @ self._read_matrix_typed(flat.dtype)
        return power.reshape(cache.n_frames, *self.grid.shape)

    def _c2f_power_fn(self, cache: SpectraCache, pyramid: GridPyramid):
        flat = self._cc_flat(cache)
        read = self._read_matrix_typed(flat.dtype)
        coarse = self._coarse_tensor(pyramid, flat.dtype)

        def power_fn(rows: np.ndarray | None, cols: np.ndarray) -> np.ndarray:
            x = flat if rows is None else flat[rows]
            if cols is pyramid.coarse_flat:
                return x @ coarse
            return x @ self._window_slice(read, cols)

        return power_fn

    def map_from_frames(self, frames: np.ndarray) -> np.ndarray:
        """SRP map from one multichannel frame, shape ``(n_az, n_el)``.

        Per-mic spectra are computed once and shared across pairs
        (``n_mics`` FFTs instead of ``2 * n_pairs``).
        """
        frames = _check_frames(self.positions, self.n_fft, frames, 2)
        cross = gcc_phat_spectra(frames, n_fft=self.n_fft, pairs=self.pairs)
        cc = np.fft.irfft(cross, n=self.n_fft, axis=-1)  # (P, n_fft)
        # Centred lag window: lag -h .. +h maps to index 0 .. 2h.
        h = self._half_span
        cc_win = np.concatenate([cc[:, -h:], cc[:, : h + 1]], axis=-1)
        power = np.zeros(self.grid.size)
        for p in range(len(self.pairs)):
            power += np.einsum("gt,gt->g", cc_win[p][self._indices[p]], self._weights[p])
        return power.reshape(self.grid.shape)

    def map_from_frames_batch(self, frames: np.ndarray) -> np.ndarray:
        """SRP maps of a batch of frames, shape ``(n_frames, n_az, n_el)``.

        ``frames`` is ``(n_frames, n_mics, frame_length)``.  One batched
        FFT/IFFT round produces every pair's GCC, and the windowed-sinc
        reads of all directions x frames are gathered per pair in a single
        fancy-index + contraction.
        """
        frames = _check_frames(self.positions, self.n_fft, frames, 3)
        cross = gcc_phat_spectra(frames, n_fft=self.n_fft, pairs=self.pairs)
        cc = np.fft.irfft(cross, n=self.n_fft, axis=-1)  # (T, P, n_fft)
        h = self._half_span
        cc_win = np.concatenate([cc[..., -h:], cc[..., : h + 1]], axis=-1)
        n_frames = frames.shape[0]
        power = cc_win.reshape(n_frames, -1) @ self._read_matrix_typed(np.float64)
        return power.reshape(n_frames, *self.grid.shape)

    def localize(
        self,
        frames: np.ndarray,
        *,
        refine: RefineConfig | int | None = None,
        state: RefineState | None = None,
        cache: SpectraCache | None = None,
    ) -> SrpResult:
        """Locate the dominant source in one multichannel frame (see
        :meth:`repro.ssl.srp.SrpPhat.localize` for the refine semantics)."""
        if self._resolve_refine(refine) is None and cache is None:
            return _peak(self.grid, self._directions, self.map_from_frames(frames))
        if cache is None:
            frames = np.asarray(frames)[None]
        return self.localize_batch(frames, refine=refine, state=state, cache=cache)[0]

    def localize_batch(
        self,
        frames: np.ndarray | None,
        *,
        refine: RefineConfig | int | None = None,
        state: RefineState | None = None,
        cache: SpectraCache | None = None,
    ) -> list[SrpResult]:
        """Locate the dominant source in every frame of a batch (see
        :meth:`repro.ssl.srp.SrpPhat.localize_batch` for the parameters)."""
        cfg = self._resolve_refine(refine)
        if cfg is None:
            if cache is not None:
                maps = self._map_from_cache(cache)
                return _batch_peaks(self.grid, self._directions, maps)
            return _batch_peaks(self.grid, self._directions, self.map_from_frames_batch(frames))
        return self._c2f_localize_batch(frames, cfg, state, cache)
