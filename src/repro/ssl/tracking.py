"""DOA tracking: constant-velocity Kalman filter on azimuth/elevation.

The "t" of the SELD(t) problem.  The tracker smooths per-frame DOA
estimates (from SRP-PHAT or Cross3D) and carries the source through short
dropouts; azimuth wrap-around is handled by innovation unwrapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KalmanDoaTracker", "TrackState", "track_sequence"]


@dataclass(frozen=True)
class TrackState:
    """One tracker output step.

    Attributes
    ----------
    azimuth, elevation:
        Smoothed direction, radians.
    azimuth_rate, elevation_rate:
        Estimated angular velocity, radians/step.
    """

    azimuth: float
    elevation: float
    azimuth_rate: float
    elevation_rate: float


class KalmanDoaTracker:
    """Constant-velocity Kalman filter over ``(azimuth, elevation)``.

    State is ``[az, el, az_rate, el_rate]``; azimuth innovations are wrapped
    into ``[-pi, pi]`` so the filter tracks through the +-pi seam.

    Because process, measurement and initial covariances are all diagonal,
    the 4-state filter decomposes exactly into two independent 2-state
    (angle, rate) filters; the implementation runs them as plain Python
    scalar arithmetic — the tracker replay is sequential by definition, so
    per-step numpy overhead is pure loss in the dense-detection hot path
    (one update *per hop* when a siren is continuously present).

    Parameters
    ----------
    process_noise:
        Angular acceleration noise density (rad/step^2).
    measurement_noise:
        Measurement standard deviation (rad).
    """

    def __init__(self, *, process_noise: float = 0.02, measurement_noise: float = 0.1) -> None:
        if process_noise <= 0 or measurement_noise <= 0:
            raise ValueError("noise parameters must be positive")
        self._q = float(process_noise)
        self._r = float(measurement_noise)
        # Per-axis process noise (matches the old q^2 * diag(0.25, 0.25, 1, 1)).
        self._q00 = 0.25 * self._q**2
        self._q11 = self._q**2
        self._r2 = self._r**2
        self._init = False
        # Per-axis state (angle, rate) and covariance (p00, p01, p11).
        self._az = self._el = 0.0
        self._vaz = self._vel = 0.0
        self._paz = [0.0, 0.0, 0.0]
        self._pel = [0.0, 0.0, 0.0]

    @property
    def initialized(self) -> bool:
        """Whether the filter has been seeded with a measurement."""
        return self._init

    def reset(self) -> None:
        """Forget the current track."""
        self._init = False

    @staticmethod
    def _wrap(angle: float) -> float:
        return (angle + np.pi) % (2 * np.pi) - np.pi

    def _predict_axis(self, pos: float, vel: float, p: list) -> tuple[float, float, list]:
        p00, p01, p11 = p
        return (
            pos + vel,
            vel,
            [p00 + 2.0 * p01 + p11 + self._q00, p01 + p11, p11 + self._q11],
        )

    def _update_axis(
        self, pos: float, vel: float, p: list, innovation: float
    ) -> tuple[float, float, list]:
        p00, p01, p11 = p
        s = p00 + self._r2
        k0 = p00 / s
        k1 = p01 / s
        return (
            pos + k0 * innovation,
            vel + k1 * innovation,
            [(1.0 - k0) * p00, (1.0 - k0) * p01, p11 - k1 * p01],
        )

    def update(self, azimuth: float, elevation: float | None = None) -> TrackState:
        """Fuse one measurement; pass ``elevation=None`` for azimuth-only.

        Missing detections can be skipped by calling :meth:`predict` instead.
        """
        azimuth = float(azimuth)
        if not -2 * np.pi <= azimuth <= 2 * np.pi:
            raise ValueError("azimuth must be in radians")
        el = 0.0 if elevation is None else float(elevation)
        if not self._init:
            self._az, self._el = azimuth, el
            self._vaz = self._vel = 0.0
            self._paz = [self._r2, 0.0, 0.1]
            self._pel = [self._r2, 0.0, 0.1]
            self._init = True
            return self._state()
        az, vaz, paz = self._predict_axis(self._az, self._vaz, self._paz)
        ele, vel, pel = self._predict_axis(self._el, self._vel, self._pel)
        self._az, self._vaz, self._paz = self._update_axis(
            az, vaz, paz, self._wrap(azimuth - az)
        )
        self._el, self._vel, self._pel = self._update_axis(ele, vel, pel, el - ele)
        self._az = self._wrap(self._az)
        return self._state()

    def predict(self) -> TrackState:
        """Advance one step without a measurement (detection dropout)."""
        if not self._init:
            raise RuntimeError("tracker not initialized; call update first")
        self._az, self._vaz, self._paz = self._predict_axis(self._az, self._vaz, self._paz)
        self._el, self._vel, self._pel = self._predict_axis(self._el, self._vel, self._pel)
        self._az = self._wrap(self._az)
        return self._state()

    def _state(self) -> TrackState:
        return TrackState(self._az, self._el, self._vaz, self._vel)


def track_sequence(
    azimuths: np.ndarray,
    elevations: np.ndarray | None = None,
    *,
    detected: np.ndarray | None = None,
    process_noise: float = 0.02,
    measurement_noise: float = 0.1,
) -> list[TrackState]:
    """Run the tracker over a sequence of per-frame DOA estimates.

    ``detected`` is an optional boolean mask; frames marked False are treated
    as dropouts (prediction only).
    """
    azimuths = np.asarray(azimuths, dtype=np.float64)
    if azimuths.ndim != 1 or azimuths.size == 0:
        raise ValueError("azimuths must be a non-empty 1-D array")
    if elevations is not None:
        elevations = np.asarray(elevations, dtype=np.float64)
        if elevations.shape != azimuths.shape:
            raise ValueError("elevations must match azimuths in shape")
    if detected is not None:
        detected = np.asarray(detected, dtype=bool)
        if detected.shape != azimuths.shape:
            raise ValueError("detected mask must match azimuths in shape")
    tracker = KalmanDoaTracker(process_noise=process_noise, measurement_noise=measurement_noise)
    out: list[TrackState] = []
    for t in range(azimuths.size):
        if detected is not None and not detected[t]:
            if tracker.initialized:
                out.append(tracker.predict())
            else:
                out.append(TrackState(float("nan"), float("nan"), 0.0, 0.0))
            continue
        el = None if elevations is None else float(elevations[t])
        out.append(tracker.update(float(azimuths[t]), el))
    return out
