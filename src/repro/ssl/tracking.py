"""DOA tracking: constant-velocity Kalman filter on azimuth/elevation.

The "t" of the SELD(t) problem.  The tracker smooths per-frame DOA
estimates (from SRP-PHAT or Cross3D) and carries the source through short
dropouts; azimuth wrap-around is handled by innovation unwrapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KalmanDoaTracker", "TrackState", "track_sequence"]


@dataclass(frozen=True)
class TrackState:
    """One tracker output step.

    Attributes
    ----------
    azimuth, elevation:
        Smoothed direction, radians.
    azimuth_rate, elevation_rate:
        Estimated angular velocity, radians/step.
    """

    azimuth: float
    elevation: float
    azimuth_rate: float
    elevation_rate: float


class KalmanDoaTracker:
    """Constant-velocity Kalman filter over ``(azimuth, elevation)``.

    State is ``[az, el, az_rate, el_rate]``; azimuth innovations are wrapped
    into ``[-pi, pi]`` so the filter tracks through the +-pi seam.

    Parameters
    ----------
    process_noise:
        Angular acceleration noise density (rad/step^2).
    measurement_noise:
        Measurement standard deviation (rad).
    """

    def __init__(self, *, process_noise: float = 0.02, measurement_noise: float = 0.1) -> None:
        if process_noise <= 0 or measurement_noise <= 0:
            raise ValueError("noise parameters must be positive")
        self._q = float(process_noise)
        self._r = float(measurement_noise)
        self._x: np.ndarray | None = None
        self._p: np.ndarray | None = None
        self._f = np.eye(4)
        self._f[0, 2] = 1.0
        self._f[1, 3] = 1.0
        self._h = np.zeros((2, 4))
        self._h[0, 0] = 1.0
        self._h[1, 1] = 1.0
        # Constant matrices, hoisted out of the per-frame hot path.
        self._q_mat = self._q**2 * np.diag([0.25, 0.25, 1.0, 1.0])
        self._r_mat = np.eye(2) * self._r**2
        self._eye4 = np.eye(4)

    @property
    def initialized(self) -> bool:
        """Whether the filter has been seeded with a measurement."""
        return self._x is not None

    def reset(self) -> None:
        """Forget the current track."""
        self._x = None
        self._p = None

    def update(self, azimuth: float, elevation: float | None = None) -> TrackState:
        """Fuse one measurement; pass ``elevation=None`` for azimuth-only.

        Missing detections can be skipped by calling :meth:`predict` instead.
        """
        if not -2 * np.pi <= azimuth <= 2 * np.pi:
            raise ValueError("azimuth must be in radians")
        el = 0.0 if elevation is None else float(elevation)
        z = np.array([azimuth, el])
        if self._x is None:
            self._x = np.array([azimuth, el, 0.0, 0.0])
            self._p = np.diag([self._r**2, self._r**2, 0.1, 0.1])
            return self._state()
        x, p = self._predict_internal()
        # H selects the first two states, so H x / H P H^T are plain slices.
        innovation = z - x[:2]
        innovation[0] = (innovation[0] + np.pi) % (2 * np.pi) - np.pi
        s = p[:2, :2] + self._r_mat
        det = s[0, 0] * s[1, 1] - s[0, 1] * s[1, 0]
        s_inv = np.array([[s[1, 1], -s[0, 1]], [-s[1, 0], s[0, 0]]]) / det
        k = p[:, :2] @ s_inv
        self._x = x + k @ innovation
        self._x[0] = (self._x[0] + np.pi) % (2 * np.pi) - np.pi
        i_kh = self._eye4.copy()
        i_kh[:, :2] -= k
        self._p = i_kh @ p
        return self._state()

    def predict(self) -> TrackState:
        """Advance one step without a measurement (detection dropout)."""
        if self._x is None:
            raise RuntimeError("tracker not initialized; call update first")
        self._x, self._p = self._predict_internal()
        self._x[0] = (self._x[0] + np.pi) % (2 * np.pi) - np.pi
        return self._state()

    def _predict_internal(self) -> tuple[np.ndarray, np.ndarray]:
        return self._f @ self._x, self._f @ self._p @ self._f.T + self._q_mat

    def _state(self) -> TrackState:
        x = self._x
        return TrackState(float(x[0]), float(x[1]), float(x[2]), float(x[3]))


def track_sequence(
    azimuths: np.ndarray,
    elevations: np.ndarray | None = None,
    *,
    detected: np.ndarray | None = None,
    process_noise: float = 0.02,
    measurement_noise: float = 0.1,
) -> list[TrackState]:
    """Run the tracker over a sequence of per-frame DOA estimates.

    ``detected`` is an optional boolean mask; frames marked False are treated
    as dropouts (prediction only).
    """
    azimuths = np.asarray(azimuths, dtype=np.float64)
    if azimuths.ndim != 1 or azimuths.size == 0:
        raise ValueError("azimuths must be a non-empty 1-D array")
    if elevations is not None:
        elevations = np.asarray(elevations, dtype=np.float64)
        if elevations.shape != azimuths.shape:
            raise ValueError("elevations must match azimuths in shape")
    if detected is not None:
        detected = np.asarray(detected, dtype=bool)
        if detected.shape != azimuths.shape:
            raise ValueError("detected mask must match azimuths in shape")
    tracker = KalmanDoaTracker(process_noise=process_noise, measurement_noise=measurement_noise)
    out: list[TrackState] = []
    for t in range(azimuths.size):
        if detected is not None and not detected[t]:
            if tracker.initialized:
                out.append(tracker.predict())
            else:
                out.append(TrackState(float("nan"), float("nan"), 0.0, 0.0))
            continue
        el = None if elevations is None else float(elevations[t])
        out.append(tracker.update(float(azimuths[t]), el))
    return out
