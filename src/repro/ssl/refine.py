"""Coarse-to-fine DOA search over a decimated grid pyramid.

The full-resolution steered-response sweep costs O(grid) per frame; in the
dense-detection regime (a siren present in *every* hop) that sweep is the
pipeline bottleneck.  This module implements the standard hierarchical fix
(cf. the Cross3D-style coarse SRP maps in :mod:`repro.ssl.cross3d`):

1. **Coarse sweep** — steer only a decimated azimuth x elevation subset of
   the grid (stride ``2 ** (levels - 1)``), using per-level steering tensors
   the localizer precomputes once.
2. **Refinement** — evaluate the full-resolution cells only inside windows
   around the ``top_k`` coarse peaks.
3. **Temporal reuse** — consecutive frames whose coarse peak stays within
   ``reuse_gate`` coarse cells of the current anchor re-use the anchor's
   refinement window, so a continuous siren replays long runs of frames
   through *identical* windows (one GEMM per run instead of per frame).

The search is sequential in its window *selection* (so a frame-at-a-time
streaming pipeline and the batched engine replay bit-identical decisions)
but batched in its window *evaluation*.

Exactness contract: the refined peak always dominates the best coarse
sample, and equals the dense sweep's argmax whenever that argmax falls in an
evaluated window — guaranteed for maps whose peak lobe is wider than one
coarse stride, and asserted as a tolerance (normalized peak-power gap, see
:func:`refinement_gap`) on adversarial inputs in
``tests/test_ssl_coarse2fine.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.ssl.doa import DoaGrid

__all__ = [
    "RefineConfig",
    "RefineState",
    "GridPyramid",
    "coarse_to_fine_search",
    "refinement_gap",
]


@dataclass(frozen=True)
class RefineConfig:
    """Coarse-to-fine search parameters.

    Attributes
    ----------
    levels:
        Pyramid depth; the coarse sweep decimates the grid by
        ``2 ** (levels - 1)`` per axis (clipped so at least 4 azimuth cells
        survive).  ``1`` disables refinement (dense sweep).
    top_k:
        Coarse cells refined at full resolution per (re)selection.
    reuse_gate:
        Temporal gate, in coarse cells (Chebyshev, azimuth-wrapped): while a
        frame's coarse peak stays within this distance of the anchor, the
        anchor's refinement window is reused.  ``0`` re-selects whenever the
        coarse peak moves.
    """

    levels: int = 2
    top_k: int = 2
    reuse_gate: int = 1

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ValueError("levels must be >= 1")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.reuse_gate < 0:
            raise ValueError("reuse_gate must be >= 0")


class RefineState:
    """Mutable temporal-reuse state (one per pipeline / stream, *not* per
    localizer — fleet nodes sharing a localizer must not share windows).

    Attributes
    ----------
    anchor:
        Coarse-cell coordinates the current window was selected around.
    window:
        Full-resolution flat indices of the current refinement window.
    n_reused, n_selected:
        Hop accounting (how often the dense path ran at coarse cost).
    """

    __slots__ = ("anchor", "window", "n_reused", "n_selected")

    def __init__(self) -> None:
        self.anchor: tuple[int, int] | None = None
        self.window: np.ndarray | None = None
        self.n_reused = 0
        self.n_selected = 0

    def reset(self) -> None:
        """Forget the anchor/window (start of a new independent stream)."""
        self.anchor = None
        self.window = None
        self.n_reused = 0
        self.n_selected = 0

    def clone(self) -> "RefineState":
        """Independent snapshot of the current anchor/window/accounting.

        Streaming runtimes hand state across step boundaries by mutating one
        object; a clone checkpoints it — e.g. to compare two engines driven
        over the same hops, or to fork a speculative replay — without the
        original and the copy aliasing the window index array.
        """
        out = RefineState()
        out.anchor = self.anchor
        out.window = None if self.window is None else self.window.copy()
        out.n_reused = self.n_reused
        out.n_selected = self.n_selected
        return out


class GridPyramid:
    """Decimated-index pyramid over a :class:`~repro.ssl.doa.DoaGrid`.

    Level ``levels - 1`` is the coarse sweep grid; level 0 is the full grid.
    All levels are index subsets of the full grid, so "per-level steering
    tensors" are column subsets of the localizer's full steering tensor.
    """

    def __init__(self, grid: DoaGrid, levels: int) -> None:
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self.grid = grid
        stride = 2 ** (levels - 1)
        # Keep at least 4 azimuth cells in the coarse sweep; elevation may
        # collapse to a single row.
        self.az_stride = max(1, min(stride, grid.n_azimuth // 4))
        self.el_stride = max(1, min(stride, grid.n_elevation))
        az_idx = np.arange(0, grid.n_azimuth, self.az_stride)
        el_idx = np.arange(0, grid.n_elevation, self.el_stride)
        self.az_cells = int(az_idx.size)
        self.el_cells = int(el_idx.size)
        # Flat full-grid indices of the coarse cells, azimuth-major (matching
        # DoaGrid.directions()).
        self.coarse_flat = (
            az_idx[:, None] * grid.n_elevation + el_idx[None, :]
        ).ravel()
        # Per-(cell, gate) window LUT and per-cell-set window memo: windows
        # recur heavily (temporal reuse, and a bounded set of top-k combos),
        # and handing back the *same* array object for the same cell set lets
        # the search group all frames sharing it into one GEMM.
        self._cell_windows: dict[int, list[np.ndarray]] = {}
        self._window_memo: dict[tuple, np.ndarray] = {}
        self._near_mask: np.ndarray | None = None

    def near_mask(self) -> np.ndarray:
        """Boolean ``(n_cells, n_cells)``: coarse cells within Chebyshev
        distance < 2 of each other (the "same lobe" neighbourhood used by
        the ambiguity check and the spatially-diverse top-k pick)."""
        if self._near_mask is None:
            n = self.az_cells * self.el_cells
            ci, cj = np.divmod(np.arange(n), self.el_cells)
            da = np.abs(ci[:, None] - ci[None, :])
            da = np.minimum(da, self.az_cells - da)
            dist = np.maximum(da, np.abs(cj[:, None] - cj[None, :]))
            self._near_mask = dist < 2
        return self._near_mask

    @property
    def is_trivial(self) -> bool:
        """Whether decimation collapsed to the full grid (nothing to refine)."""
        return self.az_stride == 1 and self.el_stride == 1

    def coarse_cell(self, coarse_index: int) -> tuple[int, int]:
        """Coarse (azimuth, elevation) cell of a coarse-sweep argmax index."""
        return divmod(int(coarse_index), self.el_cells)

    def cell_distance(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        """Chebyshev distance between coarse cells, azimuth wrapped."""
        da = abs(a[0] - b[0])
        da = min(da, self.az_cells - da)
        return max(da, abs(a[1] - b[1]))

    def window_cols(self, cells: list[tuple[int, int]], *, gate: int = 0) -> np.ndarray:
        """Full-resolution flat indices around the given coarse cells.

        The half-width is ``(gate + 1) * stride - 1`` cells per axis: wide
        enough that while the coarse peak stays within ``gate`` coarse cells
        of the anchor (the temporal-reuse envelope), the dense argmax of a
        peak-lobe-dominated map still falls inside the reused window.
        Azimuth offsets wrap; elevation offsets clip.  The union over all
        coarse cells covers the entire full grid, which ties the refinement
        tolerance to the coarse map's peak picking rather than to coverage
        gaps.
        """
        key = (tuple(sorted(cells)), gate)
        memo = self._window_memo
        hit = memo.get(key)
        if hit is not None:
            return hit
        per_cell = self._cell_lut(gate)
        if len(cells) == 1:
            out = per_cell[cells[0][0] * self.el_cells + cells[0][1]]
        else:
            out = np.unique(
                np.concatenate([per_cell[ci * self.el_cells + cj] for ci, cj in cells])
            )
        if len(memo) > 4096:  # bounded: distinct top-k combos recur heavily
            memo.clear()
        memo[key] = out
        return out

    def _cell_lut(self, gate: int) -> list[np.ndarray]:
        """Sorted window indices of every coarse cell, built once per gate."""
        lut = self._cell_windows.get(gate)
        if lut is not None:
            return lut
        n_az, n_el = self.grid.n_azimuth, self.grid.n_elevation
        half_az = min((gate + 1) * self.az_stride - 1, n_az // 2)
        half_el = (gate + 1) * self.el_stride - 1
        az_off = np.arange(-half_az, half_az + 1)
        el_off = np.arange(-half_el, half_el + 1)
        lut = []
        for ci in range(self.az_cells):
            az = (ci * self.az_stride + az_off) % n_az
            for cj in range(self.el_cells):
                el = cj * self.el_stride + el_off
                el = el[(el >= 0) & (el < n_el)]
                lut.append(np.unique((az[:, None] * n_el + el[None, :]).ravel()))
        self._cell_windows[gate] = lut
        return lut


def coarse_to_fine_search(
    power_fn: Callable[[np.ndarray | None, np.ndarray], np.ndarray],
    n_frames: int,
    pyramid: GridPyramid,
    config: RefineConfig,
    state: RefineState | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run the coarse-to-fine search over a block of frames.

    Parameters
    ----------
    power_fn:
        ``power_fn(rows, cols)`` evaluates the steered power of the frames in
        ``rows`` (``None`` = all frames) at the full-grid flat indices
        ``cols``, returning ``(len(rows), len(cols))``.  Localizers implement
        it as a column-subset of their batched sweep, and recognize
        ``pyramid.coarse_flat`` (by identity) to use their precomputed
        per-level tensor.
    n_frames:
        Number of frames in the block.
    pyramid, config:
        Search geometry and parameters.
    state:
        Temporal-reuse state carried across calls; ``None`` runs stateless
        (a fresh anchor for this block).

    Returns
    -------
    ``(peak_flat, maps)``: per-frame full-grid flat argmax indices and the
    partially evaluated power maps ``(n_frames, grid.size)`` (unevaluated
    cells hold ``-inf`` so downstream argmaxes can never land on them).
    """
    if state is None:
        state = RefineState()
    grid = pyramid.grid
    coarse_cols = pyramid.coarse_flat
    cp = power_fn(None, coarse_cols)  # (T, Gc)
    top1 = cp.argmax(axis=1)
    k = min(config.top_k, coarse_cols.size)
    # Candidate pool for the spatially-diverse top-k pick (rebuilds only).
    m = min(4 * k, coarse_cols.size)
    if m < coarse_cols.size:
        cand = np.argpartition(cp, -m, axis=1)[:, -m:]
    else:
        cand = np.broadcast_to(np.arange(coarse_cols.size), cp.shape)

    # Lobe-ambiguity flag: a spatially separated coarse runner-up close to
    # the top means two source lobes compete — reusing a stale single-lobe
    # window there is exactly where coarse-to-fine diverges from the dense
    # sweep, so those frames always re-select (and their NMS top-k covers
    # both lobes).
    lo = cp.min(axis=1)
    hi = cp[np.arange(n_frames), top1]
    runner = np.where(pyramid.near_mask()[top1], -np.inf, cp).max(axis=1)
    ambiguous = (hi - runner) < 0.25 * np.maximum(hi - lo, 1e-30)

    # Sequential window selection (cheap index math; identical in streaming
    # frame-at-a-time calls and in one batched call over the same frames).
    windows: list[np.ndarray] = []
    for t in range(n_frames):
        cell = pyramid.coarse_cell(top1[t])
        if (
            not ambiguous[t]
            and state.window is not None
            and state.anchor is not None
            and pyramid.cell_distance(cell, state.anchor) <= config.reuse_gate
        ):
            state.n_reused += 1
        else:
            # Spatially-diverse top-k (greedy non-maximum suppression over
            # coarse cells): adjacent coarse samples of one wide lobe must
            # not crowd out a second source's lobe — multi-source maps are
            # exactly where refining only clustered cells diverges from the
            # dense sweep.
            row = cp[t]
            order = cand[t][np.argsort(row[cand[t]])[::-1]]
            cells: list[tuple[int, int]] = []
            for c in order:
                cc = pyramid.coarse_cell(c)
                if all(pyramid.cell_distance(cc, s) >= 2 for s in cells):
                    cells.append(cc)
                if len(cells) == k:
                    break
            state.window = pyramid.window_cols(cells, gate=config.reuse_gate)
            state.anchor = cell
            state.n_selected += 1
        windows.append(state.window)

    maps = np.full((n_frames, grid.size), -np.inf, dtype=cp.dtype)
    maps[:, coarse_cols] = cp
    peak_flat = coarse_cols[top1].astype(np.intp)
    peak_power = cp[np.arange(n_frames), top1]

    # Batched window evaluation: group frames sharing the same window object
    # (temporal reuse makes these groups long runs in continuous replay).
    groups: dict[int, list[int]] = {}
    keyed: dict[int, np.ndarray] = {}
    for t, w in enumerate(windows):
        groups.setdefault(id(w), []).append(t)
        keyed[id(w)] = w
    for wid, ts in groups.items():
        w = keyed[wid]
        rows = np.asarray(ts, dtype=np.intp)
        pw = power_fn(rows, w)  # (R, W)
        maps[rows[:, None], w[None, :]] = pw
        am = pw.argmax(axis=1)
        wp = pw[np.arange(rows.size), am]
        better = wp >= peak_power[rows]
        peak_flat[rows[better]] = w[am[better]]
    return peak_flat, maps


def refinement_gap(dense_maps: np.ndarray, peak_flat: np.ndarray) -> np.ndarray:
    """Normalized peak-power gap of refined peaks vs the dense sweep.

    ``dense_maps`` is ``(T, n_az, n_el)`` (or ``(T, grid_size)``) from the
    full sweep; ``peak_flat`` the coarse-to-fine argmax indices.  Returns the
    per-frame gap ``(dense_max - power[peak]) / (dense_max - dense_min)`` —
    0 means the refined peak *is* the dense argmax (or ties it), 1 would mean
    it found the worst cell.  This is the quantity the coarse-to-fine
    tolerance contract bounds.
    """
    dense = np.asarray(dense_maps)
    flat = dense.reshape(dense.shape[0], -1)
    hi = flat.max(axis=1)
    lo = flat.min(axis=1)
    got = flat[np.arange(flat.shape[0]), np.asarray(peak_flat, dtype=np.intp)]
    span = np.maximum(hi - lo, np.finfo(flat.dtype).tiny)
    return (hi - got) / span
