"""MUSIC (MUltiple SIgnal Classification) DOA estimation.

A classical subspace baseline alongside SRP-PHAT: the narrowband spatial
covariance is eigen-decomposed, and the pseudo-spectrum peaks where the
steering vector is orthogonal to the noise subspace.  Broadband operation
averages the narrowband pseudo-spectra over frequency bins (incoherent
wideband MUSIC).
"""

from __future__ import annotations

import numpy as np

from repro.acoustics.geometry import SPEED_OF_SOUND
from repro.ssl.doa import DoaGrid
from repro.ssl.gcc import SpectraCache
from repro.ssl.refine import GridPyramid, RefineConfig, RefineState
from repro.ssl.srp import SrpResult, _batch_peaks, _CoarseToFineMixin, _peak

__all__ = ["spatial_covariance", "music_spectrum", "MusicDoa"]


def spatial_covariance(frames_fft: np.ndarray) -> np.ndarray:
    """Spatial covariance matrices from STFT frames.

    ``frames_fft`` is ``(n_snapshots, n_mics, n_freq)``; returns
    ``(n_freq, n_mics, n_mics)`` Hermitian covariance estimates.
    """
    x = np.asarray(frames_fft)
    if x.ndim != 3:
        raise ValueError("frames_fft must be (n_snapshots, n_mics, n_freq)")
    if x.shape[0] < 1:
        raise ValueError("need at least one snapshot")
    # R[f] = mean_t x[t, :, f] x[t, :, f]^H
    return np.einsum("tmf,tnf->fmn", x, np.conj(x)) / x.shape[0]


def music_spectrum(
    covariance: np.ndarray,
    steering: np.ndarray,
    n_sources: int,
) -> np.ndarray:
    """Narrowband MUSIC pseudo-spectrum for one frequency.

    Parameters
    ----------
    covariance:
        ``(M, M)`` Hermitian spatial covariance.
    steering:
        ``(n_dirs, M)`` steering vectors.
    n_sources:
        Assumed source count (signal-subspace dimension).
    """
    r = np.asarray(covariance)
    a = np.asarray(steering)
    m = r.shape[0]
    if r.shape != (m, m):
        raise ValueError("covariance must be square")
    if a.ndim != 2 or a.shape[1] != m:
        raise ValueError("steering must be (n_dirs, n_mics)")
    if not 1 <= n_sources < m:
        raise ValueError("need 1 <= n_sources < n_mics")
    w, v = np.linalg.eigh(r)
    noise = v[:, : m - n_sources]  # eigh sorts ascending
    proj = np.conj(a) @ noise  # a^H E_n, shape (n_dirs, m - n_sources)
    denom = np.sum(np.abs(proj) ** 2, axis=1)
    return 1.0 / np.maximum(denom, 1e-12)


class MusicDoa(_CoarseToFineMixin):
    """Incoherent wideband MUSIC localizer over a far-field DOA grid.

    Parameters
    ----------
    mic_positions, fs, grid, n_fft, c:
        As for :class:`repro.ssl.srp.SrpPhat`.
    n_sources:
        Assumed number of simultaneous sources.
    band_hz:
        Frequency band whose bins are averaged.
    refine, spectra_dtype:
        Coarse-to-fine defaults, as in :class:`repro.ssl.srp.SrpPhat`.  Note
        MUSIC's per-bin eigendecompositions are grid-independent, so the
        coarse-to-fine path only trims the steering projections — the win is
        smaller than for the SRP localizers.
    """

    def __init__(
        self,
        mic_positions: np.ndarray,
        fs: float,
        *,
        grid: DoaGrid | None = None,
        n_fft: int = 512,
        n_sources: int = 1,
        band_hz: tuple[float, float] = (300.0, 3000.0),
        c: float = SPEED_OF_SOUND,
        refine: RefineConfig | None = None,
        spectra_dtype: np.dtype | type = np.float32,
    ) -> None:
        self.positions = np.asarray(mic_positions, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3 or self.positions.shape[0] < 3:
            raise ValueError("MUSIC needs (n_mics >= 3, 3) positions")
        if fs <= 0:
            raise ValueError("fs must be positive")
        if n_fft < 64 or n_fft & (n_fft - 1):
            raise ValueError("n_fft must be a power of two >= 64")
        if not 1 <= n_sources < self.positions.shape[0]:
            raise ValueError("need 1 <= n_sources < n_mics")
        lo, hi = band_hz
        if not 0 <= lo < hi <= fs / 2:
            raise ValueError("invalid band")
        self.fs = float(fs)
        self.grid = grid or DoaGrid()
        self.n_fft = int(n_fft)
        self.n_sources = int(n_sources)
        self.c = float(c)
        freqs = np.fft.rfftfreq(self.n_fft, d=1.0 / self.fs)
        self._bins = np.flatnonzero((freqs >= lo) & (freqs <= hi))
        if self._bins.size == 0:
            raise ValueError("band contains no FFT bins")
        # Steering vectors per bin: a_m(f, u) = exp(-j 2 pi f (r_m . u) / c).
        dirs = self._directions = self.grid.directions()  # (G, 3)
        delays = -(self.positions @ dirs.T) / self.c  # (M, G) arrival delays
        self._steering = np.exp(
            -2j * np.pi * freqs[self._bins][:, None, None] * delays.T[None, :, :]
        )  # (B, G, M)
        self.refine = refine
        self.spectra_dtype = np.dtype(spectra_dtype)
        self._typed_steering: dict[str, np.ndarray] = {}

    # --------------------------------------------------- coarse-to-fine hooks

    def _validate_block(self, frames: np.ndarray) -> np.ndarray:
        if frames.ndim != 3 or frames.shape[1] != self.positions.shape[0]:
            raise ValueError(
                f"frames must be (n_frames, n_mics={self.positions.shape[0]}, L)"
            )
        return frames

    def _steering_typed(self, complex_dtype: np.dtype) -> np.ndarray:
        key = np.dtype(complex_dtype).name
        if key not in self._typed_steering:
            self._typed_steering[key] = np.ascontiguousarray(
                np.conj(self._steering), dtype=complex_dtype
            )
        return self._typed_steering[key]

    def _noise_subspaces(self, cache: SpectraCache, n_snapshots: int) -> np.ndarray:
        """Per-bin noise subspaces of every frame, ``(B, T, M, K)``.

        This is the grid-independent part of the MUSIC sweep (snapshot FFTs,
        band covariances, eigendecompositions), computed once per block and
        shared by the coarse sweep and every refinement window.
        """
        frames = cache.frames
        n_frames, m, total = frames.shape
        snap_len = total // n_snapshots
        if snap_len < 32:
            raise ValueError("frame too short for the requested snapshots")
        win = np.hanning(snap_len).astype(frames.dtype)
        blocks = frames[:, :, : n_snapshots * snap_len].reshape(
            n_frames, m, n_snapshots, snap_len
        )
        import scipy.fft as _fft

        ffts = _fft.rfft(blocks * win, n=self.n_fft, axis=-1)  # (T, M, S, F)
        band = ffts[..., self._bins]  # (T, M, S, B)
        cov = np.einsum("tmsb,tnsb->btmn", band, np.conj(band)) / n_snapshots
        n_noise = m - self.n_sources
        noise = np.empty((self._bins.size, n_frames, m, n_noise), dtype=cov.dtype)
        for b in range(self._bins.size):
            _, v = np.linalg.eigh(cov[b])  # batched over frames
            noise[b] = v[..., :n_noise]  # eigh sorts ascending
        return noise

    def _map_from_cache(self, cache: SpectraCache, *, n_snapshots: int = 8) -> np.ndarray:
        """Dense sweep from a shared cache (dtype follows the cache)."""
        noise = self._noise_subspaces(cache, n_snapshots)
        steer = self._steering_typed(noise.dtype)
        spec = np.zeros((cache.n_frames, self.grid.size), dtype=cache.dtype)
        for b in range(self._bins.size):
            proj = np.einsum("gm,tmk->tgk", steer[b], noise[b])
            denom = np.sum(proj.real**2 + proj.imag**2, axis=-1)
            spec += 1.0 / np.maximum(denom, 1e-12)
        return (spec / self._bins.size).reshape(cache.n_frames, *self.grid.shape)

    def _c2f_power_fn(self, cache: SpectraCache, pyramid: GridPyramid, *, n_snapshots: int = 8):
        noise = self._noise_subspaces(cache, n_snapshots)
        steer = self._steering_typed(noise.dtype)
        real = cache.dtype

        def power_fn(rows: np.ndarray | None, cols: np.ndarray) -> np.ndarray:
            nz = noise if rows is None else noise[:, rows]
            spec = np.zeros((nz.shape[1], cols.size), dtype=real)
            sub = steer[:, cols]  # (B, W, M)
            for b in range(self._bins.size):
                proj = np.einsum("wm,tmk->twk", sub[b], nz[b])
                denom = np.sum(proj.real**2 + proj.imag**2, axis=-1)
                spec += 1.0 / np.maximum(denom, 1e-12)
            return spec / self._bins.size

        return power_fn

    def map_from_frames(self, frames: np.ndarray, *, n_snapshots: int = 8) -> np.ndarray:
        """MUSIC map from one multichannel frame block, ``(n_az, n_el)``.

        The block is split into ``n_snapshots`` sub-frames to estimate the
        covariance.
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 2 or frames.shape[0] != self.positions.shape[0]:
            raise ValueError(f"frames must be (n_mics={self.positions.shape[0]}, L)")
        m, total = frames.shape
        snap_len = total // n_snapshots
        if snap_len < 32:
            raise ValueError("frame too short for the requested snapshots")
        win = np.hanning(snap_len)
        ffts = np.stack(
            [
                np.fft.rfft(frames[:, s * snap_len : (s + 1) * snap_len] * win, n=self.n_fft, axis=1)
                for s in range(n_snapshots)
            ]
        )  # (S, M, n_freq)
        cov = spatial_covariance(ffts)
        spec = np.zeros(self.grid.size)
        for b, k in enumerate(self._bins):
            spec += music_spectrum(cov[k], self._steering[b], self.n_sources)
        return (spec / self._bins.size).reshape(self.grid.shape)

    def map_from_frames_batch(self, frames: np.ndarray, *, n_snapshots: int = 8) -> np.ndarray:
        """MUSIC maps of a batch of frame blocks, ``(n_frames, n_az, n_el)``.

        ``frames`` is ``(n_frames, n_mics, L)``.  Snapshot FFTs and band
        covariances of all frames are computed in one shot; the per-bin
        eigendecompositions run batched over the frame axis.
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 3 or frames.shape[1] != self.positions.shape[0]:
            raise ValueError(
                f"frames must be (n_frames, n_mics={self.positions.shape[0]}, L)"
            )
        n_frames, m, total = frames.shape
        snap_len = total // n_snapshots
        if snap_len < 32:
            raise ValueError("frame too short for the requested snapshots")
        win = np.hanning(snap_len)
        blocks = frames[:, :, : n_snapshots * snap_len].reshape(n_frames, m, n_snapshots, snap_len)
        ffts = np.fft.rfft(blocks * win, n=self.n_fft, axis=-1)  # (T, M, S, F)
        band = ffts[..., self._bins]  # (T, M, S, B)
        cov = np.einsum("tmsb,tnsb->tbmn", band, np.conj(band)) / n_snapshots
        spec = np.zeros((n_frames, self.grid.size))
        n_noise = m - self.n_sources
        for b in range(self._bins.size):
            _, v = np.linalg.eigh(cov[:, b])  # batched over frames
            noise = v[..., :n_noise]  # (T, M, n_noise), eigh sorts ascending
            proj = np.einsum("gm,tmk->tgk", np.conj(self._steering[b]), noise)
            denom = np.sum(np.abs(proj) ** 2, axis=-1)
            spec += 1.0 / np.maximum(denom, 1e-12)
        return (spec / self._bins.size).reshape(n_frames, *self.grid.shape)

    def localize(
        self,
        frames: np.ndarray,
        *,
        n_snapshots: int = 8,
        refine: RefineConfig | int | None = None,
        state: RefineState | None = None,
        cache: SpectraCache | None = None,
    ) -> SrpResult:
        """Locate the dominant source in one multichannel frame block (see
        :meth:`repro.ssl.srp.SrpPhat.localize` for the refine semantics)."""
        if self._resolve_refine(refine) is None and cache is None:
            music_map = self.map_from_frames(frames, n_snapshots=n_snapshots)
            return _peak(self.grid, self._directions, music_map)
        if cache is None:
            frames = np.asarray(frames)[None]
        return self.localize_batch(
            frames, n_snapshots=n_snapshots, refine=refine, state=state, cache=cache
        )[0]

    def localize_batch(
        self,
        frames: np.ndarray | None,
        *,
        n_snapshots: int = 8,
        refine: RefineConfig | int | None = None,
        state: RefineState | None = None,
        cache: SpectraCache | None = None,
    ) -> list[SrpResult]:
        """Locate the dominant source in every frame block of a batch (see
        :meth:`repro.ssl.srp.SrpPhat.localize_batch` for the parameters)."""
        cfg = self._resolve_refine(refine)
        if cfg is None:
            if cache is not None:
                maps = self._map_from_cache(cache, n_snapshots=n_snapshots)
                return _batch_peaks(self.grid, self._directions, maps)
            maps = self.map_from_frames_batch(frames, n_snapshots=n_snapshots)
            return _batch_peaks(self.grid, self._directions, maps)
        return self._c2f_localize_batch(frames, cfg, state, cache, n_snapshots=n_snapshots)
