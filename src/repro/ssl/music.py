"""MUSIC (MUltiple SIgnal Classification) DOA estimation.

A classical subspace baseline alongside SRP-PHAT: the narrowband spatial
covariance is eigen-decomposed, and the pseudo-spectrum peaks where the
steering vector is orthogonal to the noise subspace.  Broadband operation
averages the narrowband pseudo-spectra over frequency bins (incoherent
wideband MUSIC).
"""

from __future__ import annotations

import numpy as np

from repro.acoustics.geometry import SPEED_OF_SOUND
from repro.ssl.doa import DoaGrid
from repro.ssl.srp import SrpResult, _batch_peaks, _peak

__all__ = ["spatial_covariance", "music_spectrum", "MusicDoa"]


def spatial_covariance(frames_fft: np.ndarray) -> np.ndarray:
    """Spatial covariance matrices from STFT frames.

    ``frames_fft`` is ``(n_snapshots, n_mics, n_freq)``; returns
    ``(n_freq, n_mics, n_mics)`` Hermitian covariance estimates.
    """
    x = np.asarray(frames_fft)
    if x.ndim != 3:
        raise ValueError("frames_fft must be (n_snapshots, n_mics, n_freq)")
    if x.shape[0] < 1:
        raise ValueError("need at least one snapshot")
    # R[f] = mean_t x[t, :, f] x[t, :, f]^H
    return np.einsum("tmf,tnf->fmn", x, np.conj(x)) / x.shape[0]


def music_spectrum(
    covariance: np.ndarray,
    steering: np.ndarray,
    n_sources: int,
) -> np.ndarray:
    """Narrowband MUSIC pseudo-spectrum for one frequency.

    Parameters
    ----------
    covariance:
        ``(M, M)`` Hermitian spatial covariance.
    steering:
        ``(n_dirs, M)`` steering vectors.
    n_sources:
        Assumed source count (signal-subspace dimension).
    """
    r = np.asarray(covariance)
    a = np.asarray(steering)
    m = r.shape[0]
    if r.shape != (m, m):
        raise ValueError("covariance must be square")
    if a.ndim != 2 or a.shape[1] != m:
        raise ValueError("steering must be (n_dirs, n_mics)")
    if not 1 <= n_sources < m:
        raise ValueError("need 1 <= n_sources < n_mics")
    w, v = np.linalg.eigh(r)
    noise = v[:, : m - n_sources]  # eigh sorts ascending
    proj = np.conj(a) @ noise  # a^H E_n, shape (n_dirs, m - n_sources)
    denom = np.sum(np.abs(proj) ** 2, axis=1)
    return 1.0 / np.maximum(denom, 1e-12)


class MusicDoa:
    """Incoherent wideband MUSIC localizer over a far-field DOA grid.

    Parameters
    ----------
    mic_positions, fs, grid, n_fft, c:
        As for :class:`repro.ssl.srp.SrpPhat`.
    n_sources:
        Assumed number of simultaneous sources.
    band_hz:
        Frequency band whose bins are averaged.
    """

    def __init__(
        self,
        mic_positions: np.ndarray,
        fs: float,
        *,
        grid: DoaGrid | None = None,
        n_fft: int = 512,
        n_sources: int = 1,
        band_hz: tuple[float, float] = (300.0, 3000.0),
        c: float = SPEED_OF_SOUND,
    ) -> None:
        self.positions = np.asarray(mic_positions, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3 or self.positions.shape[0] < 3:
            raise ValueError("MUSIC needs (n_mics >= 3, 3) positions")
        if fs <= 0:
            raise ValueError("fs must be positive")
        if n_fft < 64 or n_fft & (n_fft - 1):
            raise ValueError("n_fft must be a power of two >= 64")
        if not 1 <= n_sources < self.positions.shape[0]:
            raise ValueError("need 1 <= n_sources < n_mics")
        lo, hi = band_hz
        if not 0 <= lo < hi <= fs / 2:
            raise ValueError("invalid band")
        self.fs = float(fs)
        self.grid = grid or DoaGrid()
        self.n_fft = int(n_fft)
        self.n_sources = int(n_sources)
        self.c = float(c)
        freqs = np.fft.rfftfreq(self.n_fft, d=1.0 / self.fs)
        self._bins = np.flatnonzero((freqs >= lo) & (freqs <= hi))
        if self._bins.size == 0:
            raise ValueError("band contains no FFT bins")
        # Steering vectors per bin: a_m(f, u) = exp(-j 2 pi f (r_m . u) / c).
        dirs = self._directions = self.grid.directions()  # (G, 3)
        delays = -(self.positions @ dirs.T) / self.c  # (M, G) arrival delays
        self._steering = np.exp(
            -2j * np.pi * freqs[self._bins][:, None, None] * delays.T[None, :, :]
        )  # (B, G, M)

    def map_from_frames(self, frames: np.ndarray, *, n_snapshots: int = 8) -> np.ndarray:
        """MUSIC map from one multichannel frame block, ``(n_az, n_el)``.

        The block is split into ``n_snapshots`` sub-frames to estimate the
        covariance.
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 2 or frames.shape[0] != self.positions.shape[0]:
            raise ValueError(f"frames must be (n_mics={self.positions.shape[0]}, L)")
        m, total = frames.shape
        snap_len = total // n_snapshots
        if snap_len < 32:
            raise ValueError("frame too short for the requested snapshots")
        win = np.hanning(snap_len)
        ffts = np.stack(
            [
                np.fft.rfft(frames[:, s * snap_len : (s + 1) * snap_len] * win, n=self.n_fft, axis=1)
                for s in range(n_snapshots)
            ]
        )  # (S, M, n_freq)
        cov = spatial_covariance(ffts)
        spec = np.zeros(self.grid.size)
        for b, k in enumerate(self._bins):
            spec += music_spectrum(cov[k], self._steering[b], self.n_sources)
        return (spec / self._bins.size).reshape(self.grid.shape)

    def map_from_frames_batch(self, frames: np.ndarray, *, n_snapshots: int = 8) -> np.ndarray:
        """MUSIC maps of a batch of frame blocks, ``(n_frames, n_az, n_el)``.

        ``frames`` is ``(n_frames, n_mics, L)``.  Snapshot FFTs and band
        covariances of all frames are computed in one shot; the per-bin
        eigendecompositions run batched over the frame axis.
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 3 or frames.shape[1] != self.positions.shape[0]:
            raise ValueError(
                f"frames must be (n_frames, n_mics={self.positions.shape[0]}, L)"
            )
        n_frames, m, total = frames.shape
        snap_len = total // n_snapshots
        if snap_len < 32:
            raise ValueError("frame too short for the requested snapshots")
        win = np.hanning(snap_len)
        blocks = frames[:, :, : n_snapshots * snap_len].reshape(n_frames, m, n_snapshots, snap_len)
        ffts = np.fft.rfft(blocks * win, n=self.n_fft, axis=-1)  # (T, M, S, F)
        band = ffts[..., self._bins]  # (T, M, S, B)
        cov = np.einsum("tmsb,tnsb->tbmn", band, np.conj(band)) / n_snapshots
        spec = np.zeros((n_frames, self.grid.size))
        n_noise = m - self.n_sources
        for b in range(self._bins.size):
            _, v = np.linalg.eigh(cov[:, b])  # batched over frames
            noise = v[..., :n_noise]  # (T, M, n_noise), eigh sorts ascending
            proj = np.einsum("gm,tmk->tgk", np.conj(self._steering[b]), noise)
            denom = np.sum(np.abs(proj) ** 2, axis=-1)
            spec += 1.0 / np.maximum(denom, 1e-12)
        return (spec / self._bins.size).reshape(n_frames, *self.grid.shape)

    def localize(self, frames: np.ndarray, *, n_snapshots: int = 8) -> SrpResult:
        """Locate the dominant source in one multichannel frame block."""
        music_map = self.map_from_frames(frames, n_snapshots=n_snapshots)
        return _peak(self.grid, self._directions, music_map)

    def localize_batch(self, frames: np.ndarray, *, n_snapshots: int = 8) -> list[SrpResult]:
        """Locate the dominant source in every frame block of a batch."""
        maps = self.map_from_frames_batch(frames, n_snapshots=n_snapshots)
        return _batch_peaks(self.grid, self._directions, maps)
