"""Generalized cross-correlation with phase transform (GCC-PHAT)."""

from __future__ import annotations

import numpy as np

__all__ = ["gcc_phat", "gcc_phat_spectrum", "gcc_phat_spectra", "estimate_tdoa"]


def gcc_phat_spectrum(x1: np.ndarray, x2: np.ndarray, *, n_fft: int | None = None) -> np.ndarray:
    """PHAT-weighted cross-power spectrum of two equal-length signals.

    Returns the one-sided spectrum ``X1 * conj(X2) / |X1 * conj(X2)|``.
    This is the documented 2-signal API; multichannel callers should use
    :func:`gcc_phat_spectra`, which computes each channel's FFT only once.
    """
    x1 = np.asarray(x1, dtype=np.float64)
    x2 = np.asarray(x2, dtype=np.float64)
    if x1.shape != x2.shape or x1.ndim != 1 or x1.size == 0:
        raise ValueError("x1 and x2 must be non-empty 1-D arrays of equal length")
    n = n_fft or (2 * x1.size)
    cross = np.fft.rfft(x1, n) * np.conj(np.fft.rfft(x2, n))
    mag = np.abs(cross)
    return cross / np.maximum(mag, 1e-15)


def gcc_phat_spectra(
    frames: np.ndarray,
    *,
    n_fft: int | None = None,
    pairs: list[tuple[int, int]] | None = None,
) -> np.ndarray:
    """PHAT-weighted cross-power spectra of all microphone pairs at once.

    ``frames`` is ``(n_mics, frame_length)`` or batched
    ``(n_frames, n_mics, frame_length)``; the per-mic FFTs are computed
    exactly once (one batched ``rfft``) and every pair's cross-spectrum is
    formed from them — ``n_mics`` transforms instead of ``2 * n_pairs``.

    Parameters
    ----------
    frames:
        Multichannel frame(s), microphones on the second-to-last axis.
    n_fft:
        FFT length (defaults to twice the frame length, which zero-pads for
        linear correlation like :func:`gcc_phat_spectrum`).
    pairs:
        Microphone index pairs ``(i, j)``; defaults to all unordered pairs
        in the order of :func:`repro.ssl.srp.mic_pairs`.

    Returns
    -------
    ``(..., n_pairs, n_fft // 2 + 1)`` complex spectra, matching
    ``gcc_phat_spectrum(frames[..., i, :], frames[..., j, :])`` per pair.
    """
    frames = np.asarray(frames, dtype=np.float64)
    if frames.ndim < 2 or frames.shape[-1] == 0:
        raise ValueError("frames must be (..., n_mics, frame_length)")
    n_mics = frames.shape[-2]
    if n_mics < 2:
        raise ValueError("need at least 2 microphones")
    if pairs is None:
        pairs = [(i, j) for i in range(n_mics) for j in range(i + 1, n_mics)]
    n = n_fft or (2 * frames.shape[-1])
    spec = np.fft.rfft(frames, n, axis=-1)  # (..., M, F)
    # PHAT per mic: |Xi Xj*| = |Xi||Xj|, so whitening each mic's spectrum
    # once costs O(n_mics) magnitude passes instead of O(n_pairs).
    mag = np.sqrt(spec.real**2 + spec.imag**2)
    spec *= np.reciprocal(np.maximum(mag, 1e-15))
    i_idx = [i for i, _ in pairs]
    j_idx = [j for _, j in pairs]
    return spec[..., i_idx, :] * np.conj(spec[..., j_idx, :])


def gcc_phat(
    x1: np.ndarray,
    x2: np.ndarray,
    fs: float,
    *,
    max_tau: float | None = None,
    interp: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """GCC-PHAT cross-correlation of two signals.

    Returns ``(lags_seconds, correlation)`` restricted to ``|lag| <= max_tau``
    (defaults to the full range).  ``interp`` up-samples the correlation by
    zero-padding the spectrum, the classic way to get sub-sample TDOA peaks —
    and exactly the oversampling the low-complexity SRP of bench E4 removes.
    """
    if fs <= 0:
        raise ValueError("fs must be positive")
    if interp < 1:
        raise ValueError("interp must be >= 1")
    spec = gcc_phat_spectrum(x1, x2)
    n = 2 * (spec.size - 1)
    cc = np.fft.irfft(spec, n=interp * n)
    max_shift = interp * n // 2
    if max_tau is not None:
        if max_tau <= 0:
            raise ValueError("max_tau must be positive")
        max_shift = min(max_shift, int(np.ceil(interp * fs * max_tau)))
    cc = np.concatenate([cc[-max_shift:], cc[: max_shift + 1]])
    lags = np.arange(-max_shift, max_shift + 1) / (interp * fs)
    return lags, cc


def estimate_tdoa(
    x1: np.ndarray,
    x2: np.ndarray,
    fs: float,
    *,
    max_tau: float | None = None,
    interp: int = 4,
) -> float:
    """Time difference of arrival of ``x1`` relative to ``x2`` in seconds.

    Positive values mean ``x1`` received the wavefront *later* than ``x2``.
    Peak position is refined by parabolic interpolation around the maximum.
    """
    lags, cc = gcc_phat(x1, x2, fs, max_tau=max_tau, interp=interp)
    k = int(np.argmax(cc))
    if 0 < k < cc.size - 1:
        y0, y1, y2 = cc[k - 1], cc[k], cc[k + 1]
        denom = y0 - 2 * y1 + y2
        if abs(denom) > 1e-15:
            delta = 0.5 * (y0 - y2) / denom
            delta = float(np.clip(delta, -0.5, 0.5))
            return float(lags[k] + delta * (lags[1] - lags[0]))
    return float(lags[k])
