"""Generalized cross-correlation with phase transform (GCC-PHAT).

Alongside the pairwise/batched GCC-PHAT functions this module hosts
:class:`SpectraCache`, the shared frequency-domain front-end of the dense
detection path: per-mic FFTs, PHAT-whitened spectra, pair cross-spectra and
lag-domain GCCs are computed once per frame block and memoized, so the
detector front-end, every localizer (:class:`~repro.ssl.srp.SrpPhat`,
:class:`~repro.ssl.srp_fast.FastSrpPhat`, :class:`~repro.ssl.music.MusicDoa`)
and wide-baseline TDOA estimation stop re-transforming the same frames.
"""

from __future__ import annotations

import numpy as np
import scipy.fft as _fft

__all__ = [
    "gcc_phat",
    "gcc_phat_spectrum",
    "gcc_phat_spectra",
    "estimate_tdoa",
    "SpectraCache",
]


def gcc_phat_spectrum(x1: np.ndarray, x2: np.ndarray, *, n_fft: int | None = None) -> np.ndarray:
    """PHAT-weighted cross-power spectrum of two equal-length signals.

    Returns the one-sided spectrum ``X1 * conj(X2) / |X1 * conj(X2)|``.
    This is the documented 2-signal API; multichannel callers should use
    :func:`gcc_phat_spectra`, which computes each channel's FFT only once.
    """
    x1 = np.asarray(x1, dtype=np.float64)
    x2 = np.asarray(x2, dtype=np.float64)
    if x1.shape != x2.shape or x1.ndim != 1 or x1.size == 0:
        raise ValueError("x1 and x2 must be non-empty 1-D arrays of equal length")
    n = n_fft or (2 * x1.size)
    cross = np.fft.rfft(x1, n) * np.conj(np.fft.rfft(x2, n))
    mag = np.abs(cross)
    return cross / np.maximum(mag, 1e-15)


def _whitened_spectra(frames: np.ndarray, n_fft: int) -> np.ndarray:
    """PHAT-whitened per-mic spectra ``(..., M, n_fft // 2 + 1)``.

    The single implementation behind :func:`gcc_phat_spectra` and
    :class:`SpectraCache` — keeping them on one code path is what makes the
    cache bit-identical to the direct API.  ``scipy.fft`` is used instead of
    ``np.fft`` because it preserves float32 inputs (complex64 out), which is
    the pipeline's fast dense-path dtype; for float64 the two produce
    identical bits (same pocketfft core).
    """
    return _whiten_inplace(_fft.rfft(frames, n_fft, axis=-1))


def _whiten_inplace(spec: np.ndarray) -> np.ndarray:
    """PHAT-whiten complex spectra in place (per mic, not per pair).

    ``|Xi Xj*| = |Xi||Xj|``, so whitening each mic's spectrum once costs
    O(n_mics) magnitude passes instead of O(n_pairs); every intermediate is
    reused in place — the dense path runs this over multi-MB blocks per call.
    """
    real = spec.real.dtype
    eps = np.asarray(1e-15 if real != np.float32 else 1e-12, dtype=real)
    mag = np.sqrt(spec.real**2 + spec.imag**2)
    spec *= np.reciprocal(np.maximum(mag, eps))
    return spec


def _pair_cross(whitened: np.ndarray, pairs: list[tuple[int, int]]) -> np.ndarray:
    """Cross-spectra of the given mic pairs from whitened per-mic spectra."""
    ctype = np.complex64 if whitened.dtype == np.complex64 else np.complex128
    out = np.empty((*whitened.shape[:-2], len(pairs), whitened.shape[-1]), dtype=ctype)
    for p, (i, j) in enumerate(pairs):
        # Per-pair products into a preallocated block: same flops as one
        # fancy-indexed gather-multiply but without the two gather copies.
        np.multiply(
            whitened[..., i, :], np.conj(whitened[..., j, :]), out=out[..., p, :]
        )
    return out


def _all_pairs(n_mics: int) -> list[tuple[int, int]]:
    return [(i, j) for i in range(n_mics) for j in range(i + 1, n_mics)]


def gcc_phat_spectra(
    frames: np.ndarray,
    *,
    n_fft: int | None = None,
    pairs: list[tuple[int, int]] | None = None,
) -> np.ndarray:
    """PHAT-weighted cross-power spectra of all microphone pairs at once.

    ``frames`` is ``(n_mics, frame_length)`` or batched
    ``(n_frames, n_mics, frame_length)``; the per-mic FFTs are computed
    exactly once (one batched ``rfft``) and every pair's cross-spectrum is
    formed from them — ``n_mics`` transforms instead of ``2 * n_pairs``.

    Parameters
    ----------
    frames:
        Multichannel frame(s), microphones on the second-to-last axis.
    n_fft:
        FFT length (defaults to twice the frame length, which zero-pads for
        linear correlation like :func:`gcc_phat_spectrum`).
    pairs:
        Microphone index pairs ``(i, j)``; defaults to all unordered pairs
        in the order of :func:`repro.ssl.srp.mic_pairs`.

    Returns
    -------
    ``(..., n_pairs, n_fft // 2 + 1)`` complex spectra, matching
    ``gcc_phat_spectrum(frames[..., i, :], frames[..., j, :])`` per pair.
    """
    frames = np.asarray(frames, dtype=np.float64)
    if frames.ndim < 2 or frames.shape[-1] == 0:
        raise ValueError("frames must be (..., n_mics, frame_length)")
    n_mics = frames.shape[-2]
    if n_mics < 2:
        raise ValueError("need at least 2 microphones")
    if pairs is None:
        pairs = _all_pairs(n_mics)
    n = n_fft or (2 * frames.shape[-1])
    return _pair_cross(_whitened_spectra(frames, n), pairs)


class SpectraCache:
    """Memoized frequency-domain front-end for one block of frames.

    Construct it once per block of multichannel frames and hand it to every
    consumer of that block — the batched detector front-end, the SRP/MUSIC
    localizers (coarse sweep *and* refinement), and TDOA estimation.  Each
    distinct transform (keyed by FFT length / window / pair list) is computed
    exactly once; nothing is computed until first requested.

    Parameters
    ----------
    frames:
        ``(n_frames, n_mics, frame_length)`` or a single ``(n_mics,
        frame_length)`` block (normalized to a batch of one).
    dtype:
        Working dtype of the spectra.  ``float64`` reproduces the direct
        :func:`gcc_phat_spectra` results bit for bit (asserted in the cache
        coherence tests); ``float32`` halves memory traffic and is the
        default dtype of the pipeline's dense localization path, where the
        coarse-to-fine contract is tolerance- rather than bit-exact.
    """

    def __init__(self, frames: np.ndarray, *, dtype: np.dtype | type = np.float64) -> None:
        frames = np.asarray(frames)
        if frames.ndim == 2:
            frames = frames[None]
        if frames.ndim != 3 or frames.shape[-1] == 0 or frames.shape[-2] < 1:
            raise ValueError("frames must be (n_frames, n_mics, frame_length)")
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("dtype must be float32 or float64")
        # The original (undowncast, possibly strided) frames back the float64
        # detection fallback, so a float32 cache never perturbs sparse-regime
        # results; the contiguous working-dtype copy is materialized lazily —
        # a block with no localized frames never pays for it.
        self._source = frames
        self._frames: np.ndarray | None = None
        self._raw: dict[int, np.ndarray] = {}
        self._whitened: dict[int, np.ndarray] = {}
        self._cross: dict[tuple[int, tuple], np.ndarray] = {}
        self._gcc: dict[tuple[int, tuple], np.ndarray] = {}
        self._windowed_power: dict[tuple, np.ndarray] = {}

    # ------------------------------------------------------------ properties

    @property
    def frames(self) -> np.ndarray:
        """Contiguous working-dtype frames (materialized on first use)."""
        if self._frames is None:
            self._frames = np.ascontiguousarray(self._source, dtype=self.dtype)
        return self._frames

    @property
    def source_frames(self) -> np.ndarray:
        """The original frames as handed in (undowncast, possibly strided)."""
        return self._source

    @property
    def n_frames(self) -> int:
        """Number of frames in the block."""
        return self._source.shape[0]

    @property
    def n_mics(self) -> int:
        """Number of microphones."""
        return self._source.shape[1]

    @property
    def frame_length(self) -> int:
        """Samples per frame."""
        return self._source.shape[2]

    # ------------------------------------------------------------ transforms

    def spectra(self, n_fft: int) -> np.ndarray:
        """Raw (unwhitened) per-mic spectra, ``(T, M, n_fft // 2 + 1)``.

        Calling this up front "primes" the cache: the detector front-end can
        then derive its windowed reference spectrum from it
        (:meth:`ref_windowed_power`) instead of running its own FFT.
        """
        if n_fft not in self._raw:
            self._raw[n_fft] = _fft.rfft(self.frames, n_fft, axis=-1)
        return self._raw[n_fft]

    def whitened(self, n_fft: int) -> np.ndarray:
        """PHAT-whitened per-mic spectra, ``(T, M, n_fft // 2 + 1)``."""
        if n_fft not in self._whitened:
            if n_fft in self._raw:
                self._whitened[n_fft] = _whiten_inplace(self._raw[n_fft].copy())
            else:
                self._whitened[n_fft] = _whitened_spectra(self.frames, n_fft)
        return self._whitened[n_fft]

    def prime_dense(self, n_fft: int, window: np.ndarray, *, mic: int = 0) -> None:
        """Dense-regime priming: one FFT pass serves detection *and* SSL.

        Computes the raw spectra at ``n_fft``, immediately derives the
        windowed detection power of ``mic`` from them
        (:meth:`ref_windowed_power`), then whitens the spectra **in place**
        for the localizers — the raw array is consumed, skipping the copy
        the lazy path would pay.  Call before detection when the block is
        expected to localize most frames.
        """
        if n_fft not in self._whitened:
            pre_existing = n_fft in self._raw
            spec = self._raw.get(n_fft)
            if spec is None:
                spec = _fft.rfft(self.frames, n_fft, axis=-1)
            self._raw[n_fft] = spec
            self.ref_windowed_power(window, mic=mic)  # derive while raw exists
            del self._raw[n_fft]
            # In-place whitening is only safe on an array nobody else holds;
            # a pre-existing raw entry may have been handed out by spectra().
            self._whitened[n_fft] = _whiten_inplace(spec.copy() if pre_existing else spec)
        else:
            self.ref_windowed_power(window, mic=mic)

    def cross_spectra(
        self, n_fft: int, pairs: list[tuple[int, int]] | None = None
    ) -> np.ndarray:
        """PHAT cross-spectra per pair, ``(T, P, n_fft // 2 + 1)``.

        With ``dtype=float64`` this equals ``gcc_phat_spectra(frames,
        n_fft=n_fft, pairs=pairs)`` bit for bit (same code path).
        """
        pairs = pairs if pairs is not None else _all_pairs(self.n_mics)
        key = (n_fft, tuple(pairs))
        if key not in self._cross:
            self._cross[key] = _pair_cross(self.whitened(n_fft), list(pairs))
        return self._cross[key]

    def gcc(self, n_fft: int, pairs: list[tuple[int, int]] | None = None) -> np.ndarray:
        """Lag-domain GCC-PHAT per pair, ``(T, P, n_fft)`` (circular layout:
        lag ``l`` at index ``l % n_fft``)."""
        pairs = pairs if pairs is not None else _all_pairs(self.n_mics)
        key = (n_fft, tuple(pairs))
        if key not in self._gcc:
            self._gcc[key] = _fft.irfft(self.cross_spectra(n_fft, pairs), n=n_fft, axis=-1)
        return self._gcc[key]

    def ref_windowed_power(self, window: np.ndarray, *, mic: int = 0) -> np.ndarray:
        """Windowed power spectrum of one mic at the native frame length.

        This is the detection front-end's ``|rfft(frame * window)|**2``.  When
        the raw double-length spectra are already cached (the localizer needs
        them anyway in the dense regime), the windowed spectrum is *derived*
        instead of re-FFT'd: zero-padded spectra decimate exactly
        (``X_L[k] = X_2L[2k]``) and a periodic Hann window is a 3-tap kernel
        in the frequency domain (``0.5 X[k] - 0.25 X[k-1] - 0.25 X[k+1]``).
        Non-Hann windows or a cold cache fall back to a direct float64 FFT,
        which matches the streaming detector bit for bit.
        """
        window = np.asarray(window)
        key = (window.tobytes(), mic)
        if key in self._windowed_power:
            return self._windowed_power[key]
        length = self.frame_length
        raw2 = self._raw.get(2 * length)
        if raw2 is not None and self._is_periodic_hann(window):
            x = raw2[:, mic, ::2]  # X_L[k] = X_2L[2k], k = 0 .. L/2
            inner = x[:, :-2] + x[:, 2:]  # X_L[k-1] + X_L[k+1] for 1 <= k <= L/2-1
            y = 0.5 * x.copy()
            y[:, 1:-1] -= 0.25 * inner
            # Hermitian edges: X_L[-1] = conj(X_L[1]), X_L[L/2+1] = conj(X_L[L/2-1]).
            y[:, 0] -= 0.5 * x[:, 1].real
            y[:, -1] -= 0.5 * x[:, -2].real
            out = y.real**2 + y.imag**2
        else:
            spec = np.fft.rfft(np.asarray(self._source[:, mic, :], dtype=np.float64) * window)
            out = spec.real**2 + spec.imag**2
        self._windowed_power[key] = out
        return out

    @staticmethod
    def _is_periodic_hann(window: np.ndarray) -> bool:
        n = window.shape[0]
        t = np.arange(n) / n
        return bool(np.allclose(window, 0.5 - 0.5 * np.cos(2 * np.pi * t), atol=1e-12))

    # ------------------------------------------------------------- selection

    def take(self, indices: np.ndarray) -> "SpectraCache":
        """A child cache over a subset of frames.

        Every transform already computed is sliced (no recomputation); ones
        not yet computed are computed lazily on the subset only.  Used by the
        block engine to hand the localizer just the detected frames while
        sharing whatever the detector already paid for.
        """
        indices = np.asarray(indices, dtype=np.intp)
        child = SpectraCache.__new__(SpectraCache)
        child.dtype = self.dtype
        child._source = self._source[indices]
        child._frames = None if self._frames is None else self._frames[indices]
        child._raw = {k: v[indices] for k, v in self._raw.items()}
        child._whitened = {k: v[indices] for k, v in self._whitened.items()}
        child._cross = {k: v[indices] for k, v in self._cross.items()}
        child._gcc = {k: v[indices] for k, v in self._gcc.items()}
        child._windowed_power = {k: v[indices] for k, v in self._windowed_power.items()}
        return child


def gcc_phat(
    x1: np.ndarray,
    x2: np.ndarray,
    fs: float,
    *,
    max_tau: float | None = None,
    interp: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """GCC-PHAT cross-correlation of two signals.

    Returns ``(lags_seconds, correlation)`` restricted to ``|lag| <= max_tau``
    (defaults to the full range).  ``interp`` up-samples the correlation by
    zero-padding the spectrum, the classic way to get sub-sample TDOA peaks —
    and exactly the oversampling the low-complexity SRP of bench E4 removes.
    """
    if fs <= 0:
        raise ValueError("fs must be positive")
    if interp < 1:
        raise ValueError("interp must be >= 1")
    spec = gcc_phat_spectrum(x1, x2)
    n = 2 * (spec.size - 1)
    cc = np.fft.irfft(spec, n=interp * n)
    max_shift = interp * n // 2
    if max_tau is not None:
        if max_tau <= 0:
            raise ValueError("max_tau must be positive")
        max_shift = min(max_shift, int(np.ceil(interp * fs * max_tau)))
    cc = np.concatenate([cc[-max_shift:], cc[: max_shift + 1]])
    lags = np.arange(-max_shift, max_shift + 1) / (interp * fs)
    return lags, cc


def estimate_tdoa(
    x1: np.ndarray,
    x2: np.ndarray,
    fs: float,
    *,
    max_tau: float | None = None,
    interp: int = 4,
) -> float:
    """Time difference of arrival of ``x1`` relative to ``x2`` in seconds.

    Positive values mean ``x1`` received the wavefront *later* than ``x2``.
    Peak position is refined by parabolic interpolation around the maximum.
    """
    lags, cc = gcc_phat(x1, x2, fs, max_tau=max_tau, interp=interp)
    k = int(np.argmax(cc))
    if 0 < k < cc.size - 1:
        y0, y1, y2 = cc[k - 1], cc[k], cc[k + 1]
        denom = y0 - 2 * y1 + y2
        if abs(denom) > 1e-15:
            delta = 0.5 * (y0 - y2) / denom
            delta = float(np.clip(delta, -0.5, 0.5))
            return float(lags[k] + delta * (lags[1] - lags[0]))
    return float(lags[k])
