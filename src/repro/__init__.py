"""repro: Real-Time Acoustic Perception for Automotive Applications.

A full reproduction of the I-SPOT project paper (DATE 2023,
arXiv:2301.12808): road-acoustics simulation, emergency-sound detection,
sound-source localization (SRP-PHAT / Cross3D), microphone-array
assessment, and the hardware-algorithm co-design workflow with operator IR,
cost models and a CGRA mapping substrate.

Subpackages
-----------
acoustics
    Road-acoustics simulator (pyroadacoustics reimplementation).
signals
    Siren/horn/urban-noise synthesis.
dsp
    STFT, FIR design, levels, resampling.
features
    Spectrogram/mel/MFCC/gammatone/GFCC/CQT/chroma front-ends.
nn
    From-scratch numpy neural-network framework.
sed
    Detection dataset, models, training, metrics.
ssl
    GCC-PHAT, SRP-PHAT (conventional + low-complexity), Cross3D, tracking.
arrays
    Microphone-array topologies and assessment.
hw
    Operator IR, roofline/cost models, CGRA fabric + mapper, co-design DSE.
core
    The end-to-end streaming pipeline with drive/park modes.
fleet
    Multi-node roadside sensor network: corridor simulation, sharded
    per-node pipelines, cross-node track fusion and corridor reports.
stream
    Real-time ingest runtime: ring buffers, chunk sources, hop-clocked
    engines with latency and late/dropped-chunk accounting.

Performance notes
-----------------
Three execution engines drive one shared per-hop implementation
(:class:`repro.core.hop.HopKernel` — detect, prime, localize, track):

- **Streaming** (:class:`repro.core.AcousticPerceptionPipeline`): one
  ``process_frame`` tick per hop — bounded latency, the low-latency driving
  mode of the paper.
- **Batched** (:class:`repro.core.BlockPipeline` /
  :func:`repro.core.process_signal_batched`): whole recordings (or batches
  of recordings) flow through as array operations — a zero-copy framing
  view (:func:`repro.dsp.stft.frame_signals`), one batched FFT + mel +
  detector forward over all hops, and one batched SRP/MUSIC call over the
  detected frames (``map_from_frames_batch``).  Results are numerically
  equivalent to streaming; throughput is ~10x on front-end-bound clips
  (see ``benchmarks/test_bench_throughput.py`` and ``BENCH_pipeline.json``).
- **Real-time ingest** (:class:`repro.stream.StreamPipeline`, and
  :class:`repro.fleet.FleetStream` for a corridor): chunk sources feed
  fixed-capacity ring buffers; each hop-clocked step advances one hop
  batch and (fleet-wide) fuses the new frames immediately, with per-hop
  latency guarded against the hop deadline (bench E15).

The batched GCC layer (:func:`repro.ssl.gcc_phat_spectra`) computes each
microphone's FFT once and whitens per mic, so both engines spend
``n_mics`` transforms per frame instead of ``2 * n_pairs``.  In the
dense-detection regime (a siren in every hop), localization runs through a
shared per-block :class:`repro.ssl.SpectraCache` and a coarse-to-fine grid
search with temporal window reuse (:mod:`repro.ssl.refine`) — the default
path, ~5-6x streaming where the one-shot dense sweep managed ~1.5x.
Coefficient tables (:func:`repro.dsp.stft.get_window`,
:func:`repro.features.mel_filterbank`) are memoized and shared.
"""

__version__ = "1.0.0"

__all__ = [
    "acoustics",
    "signals",
    "dsp",
    "features",
    "nn",
    "sed",
    "ssl",
    "arrays",
    "hw",
    "core",
    "fleet",
    "stream",
]
