"""repro: Real-Time Acoustic Perception for Automotive Applications.

A full reproduction of the I-SPOT project paper (DATE 2023,
arXiv:2301.12808): road-acoustics simulation, emergency-sound detection,
sound-source localization (SRP-PHAT / Cross3D), microphone-array
assessment, and the hardware-algorithm co-design workflow with operator IR,
cost models and a CGRA mapping substrate.

Subpackages
-----------
acoustics
    Road-acoustics simulator (pyroadacoustics reimplementation).
signals
    Siren/horn/urban-noise synthesis.
dsp
    STFT, FIR design, levels, resampling.
features
    Spectrogram/mel/MFCC/gammatone/GFCC/CQT/chroma front-ends.
nn
    From-scratch numpy neural-network framework.
sed
    Detection dataset, models, training, metrics.
ssl
    GCC-PHAT, SRP-PHAT (conventional + low-complexity), Cross3D, tracking.
arrays
    Microphone-array topologies and assessment.
hw
    Operator IR, roofline/cost models, CGRA fabric + mapper, co-design DSE.
core
    The end-to-end streaming pipeline with drive/park modes.
"""

__version__ = "1.0.0"

__all__ = [
    "acoustics",
    "signals",
    "dsp",
    "features",
    "nn",
    "sed",
    "ssl",
    "arrays",
    "hw",
    "core",
]
