"""Road-acoustics simulator (Fig. 2 of the paper).

For every microphone the received signal is the sum of two propagation paths:

- **direct**: a variable-length fractional delay line driven by the source
  signal (delay = d1 / c, producing Doppler), a spherical-spreading gain
  1 / d1, and an air-absorption FIR ``H_air(d1)``;
- **reflected**: the image-source path of total length d2 + d3 (Fig. 3),
  with gain 1 / (d2 + d3), the asphalt reflection FIR ``H_refl`` and the
  air-absorption FIR over the reflected path length.

Air absorption depends on the propagation distance, which changes as the
source moves; it is realized with block-wise filtering (windowed
overlap-add, filters re-designed per block from the block's mean distance
and cached on a quantized distance grid).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acoustics.air import AirFilterBank, shared_air_filter_bank
from repro.acoustics.asphalt import asphalt_reflection_fir
from repro.acoustics.delay_line import INTERPOLATORS, render_varying_delay
from repro.acoustics.environment import Scene
from repro.acoustics.geometry import image_source
from repro.dsp.block_fir import BlockFir

__all__ = ["AirAbsorptionStage", "RoadAcousticsSimulator", "PathSnapshot"]


class AirAbsorptionStage:
    """Streaming distance-varying air absorption (windowed overlap-add).

    The realization the simulator has always used — 50 %-overlapped periodic
    Hann blocks, each filtered with the FIR of its mean distance quantized to
    the bank's grid, overlap-added and normalized — restated as a *stateful*
    stage: input (and the matching per-sample distances) arrive in arbitrary
    slices, output comes back as soon as no future block can touch it.  The
    Hann overlap is what crossfades between neighbouring distance-bin
    filters, so a vehicle crossing a 2 m bin never produces a sample-step
    discontinuity (asserted in ``tests/test_dsp_block_fir.py``).

    Blocks are laid out on fixed boundaries of the *total* stream length
    (``block = min(air_block, total)``, hop ``block // 2`` — exactly the
    offline layout), so the emitted samples are bitwise invariant to how the
    caller slices the feed; per-channel filtering happens in one batched
    :meth:`~repro.acoustics.air.AirFilterBank.convolve` per block instead of
    a per-mic Python loop.

    Parameters
    ----------
    bank:
        Shared per-scene :class:`~repro.acoustics.air.AirFilterBank`.
    total:
        Total samples the stream will carry (the block layout depends on it,
        so it must be declared up front — callers always know the scene
        length).
    air_block:
        Nominal OLA block length in samples.
    """

    def __init__(self, bank: AirFilterBank, total: int, *, air_block: int = 4096) -> None:
        if total < 1:
            raise ValueError("total must be >= 1")
        if air_block < 256:
            raise ValueError("air_block must be >= 256 samples")
        self.bank = bank
        self.total = int(total)
        self.block = min(int(air_block), self.total)
        self.hop = self.block // 2
        self._win = 0.5 - 0.5 * np.cos(
            2 * np.pi * np.arange(self.block) / self.block
        )  # periodic Hann, COLA at 50%
        self._x: np.ndarray | None = None  # (C, total) input
        self._d: np.ndarray | None = None  # (C, total) distances
        self._n_in = 0
        self._next_start = 0
        self._out: np.ndarray | None = None
        self._norm = np.zeros(self.total + self.block)
        self._n_final = 0
        self._n_emitted = 0
        self._finished = False

    @property
    def n_fed(self) -> int:
        return self._n_in

    @property
    def n_emitted(self) -> int:
        return self._n_emitted

    def feed(self, x: np.ndarray, distances: np.ndarray) -> np.ndarray:
        """Append ``(C, m)`` samples + matching distances; return what's final."""
        if self._finished:
            raise RuntimeError("cannot feed after finish()")
        x = np.asarray(x, dtype=np.float64)
        distances = np.asarray(distances, dtype=np.float64)
        if x.ndim != 2 or x.shape != distances.shape:
            raise ValueError("x and distances must both be (n_channels, m)")
        if self._x is None:
            n_ch = x.shape[0]
            self._x = np.zeros((n_ch, self.total))
            self._d = np.zeros((n_ch, self.total))
            self._out = np.zeros((n_ch, self.total + self.block))
        if x.shape[0] != self._x.shape[0]:
            raise ValueError("channel count changed mid-stream")
        m = x.shape[-1]
        if self._n_in + m > self.total:
            raise ValueError(f"stage sized for {self.total} samples, fed {self._n_in + m}")
        self._x[:, self._n_in : self._n_in + m] = x
        self._d[:, self._n_in : self._n_in + m] = distances
        self._n_in += m
        self._process_ready()
        return self._drain()

    def finish(self) -> np.ndarray:
        """Flush; the stage must have been fed exactly ``total`` samples."""
        if self._finished:
            raise RuntimeError("finish() already called")
        if self._n_in != self.total:
            raise ValueError(f"stage fed {self._n_in} of {self.total} samples")
        self._finished = True
        if self.hop == 0:
            # Degenerate single-sample stream: one whole-signal filter from
            # the mean distance (the offline fallback for hop == 0).
            dm = self._d.mean(axis=-1)
            idx = self._indices(dm)
            self._n_emitted = self.total
            return self.bank.convolve(self._x, idx, zero_phase=True)
        self._process_ready()
        return self._drain()

    # ------------------------------------------------------------- internals

    def _indices(self, mean_distances: np.ndarray) -> np.ndarray:
        return np.array(
            [self.bank.index_of(self.bank.key_of(float(v))) for v in mean_distances]
        )

    def _process_ready(self) -> None:
        if self.hop == 0:
            return  # handled wholesale in finish()
        starts = []
        while self._next_start < self.total and self._n_in >= min(
            self._next_start + self.block, self.total
        ):
            starts.append(self._next_start)
            self._next_start += self.hop
        if starts:
            # All ready blocks go through ONE stacked convolution — rows are
            # (block, channel) pairs, each selecting its own bank filter.  A
            # whole-signal feed convolves the entire stream in one call; a
            # hop-sliced feed sees one block at a time.  Per-row results are
            # identical either way, so slicing invariance stays bitwise.
            n_ch = self._x.shape[0]
            segs = np.zeros((len(starts), n_ch, self.block))
            idx = np.empty((len(starts), n_ch), dtype=np.intp)
            for j, s in enumerate(starts):
                stop = min(s + self.block, self.total)
                segs[j, :, : stop - s] = self._x[:, s:stop]
                idx[j] = self._indices(self._d[:, s:stop].mean(axis=-1))
            segs *= self._win
            y = self.bank.convolve(segs, idx, zero_phase=True)
            for j, s in enumerate(starts):
                self._out[:, s : s + self.block] += y[j]
                self._norm[s : s + self.block] += self._win
        self._n_final = self.total if self._next_start >= self.total else self._next_start

    def _drain(self) -> np.ndarray:
        lo, hi = self._n_emitted, self._n_final
        self._n_emitted = hi
        if self._out is None:
            return np.zeros((0, 0))
        # Interior samples see sum(win) == 1 (Hann COLA at 50 %); clamp the
        # under-covered first/last half-blocks to avoid amplifying edges.
        return self._out[:, lo:hi] / np.maximum(self._norm[lo:hi], 0.5)


@dataclass(frozen=True)
class PathSnapshot:
    """Geometry of both propagation paths at one instant (for inspection)."""

    t: float
    source_position: np.ndarray
    direct_distance: float
    reflected_distance: float
    direct_delay_s: float
    reflected_delay_s: float


class RoadAcousticsSimulator:
    """Simulate a moving source received by a static microphone array.

    Parameters
    ----------
    scene:
        The :class:`~repro.acoustics.environment.Scene` to simulate.
    fs:
        Sampling rate in Hz.
    interpolation:
        Fractional-delay interpolator: ``linear``, ``lagrange`` or ``sinc``.
    order:
        Lagrange order (only used with ``lagrange``).
    air_absorption:
        Apply the distance-dependent air-absorption filters.
    min_distance:
        Spreading gains are clipped at this distance to avoid the 1/r
        singularity when the source passes a microphone.
    air_block:
        Block length (samples) for the distance-varying air filter.
    """

    def __init__(
        self,
        scene: Scene,
        fs: float,
        *,
        interpolation: str = "lagrange",
        order: int = 3,
        air_absorption: bool = True,
        min_distance: float = 0.5,
        air_block: int = 4096,
        air_taps: int = 63,
        reflection_taps: int = 33,
    ) -> None:
        if fs <= 0:
            raise ValueError("fs must be positive")
        if interpolation not in INTERPOLATORS:
            raise ValueError(f"interpolation must be one of {INTERPOLATORS}")
        if min_distance <= 0:
            raise ValueError("min_distance must be positive")
        if air_block < 256:
            raise ValueError("air_block must be >= 256 samples")
        self.scene = scene
        self.fs = float(fs)
        self.interpolation = interpolation
        self.order = int(order)
        self.air_absorption = bool(air_absorption)
        self.min_distance = float(min_distance)
        self.air_block = int(air_block)
        self.air_taps = int(air_taps)
        self._air_bank = (
            shared_air_filter_bank(self.fs, scene.atmosphere, n_taps=self.air_taps)
            if self.air_absorption
            else None
        )
        self._refl_fir = (
            asphalt_reflection_fir(scene.surface, fs, n_taps=reflection_taps)
            if scene.surface is not None
            else None
        )

    # ------------------------------------------------------------------ API

    def simulate(self, signal: np.ndarray) -> np.ndarray:
        """Render the microphone signals for a source emitting ``signal``.

        Returns an array of shape ``(n_mics, len(signal))``.
        """
        signal = np.asarray(signal, dtype=np.float64)
        if signal.ndim != 1 or signal.size == 0:
            raise ValueError("signal must be a non-empty 1-D array")
        t = np.arange(signal.size) / self.fs
        src = self.scene.trajectory.positions(t)
        if np.any(src[:, 2] <= 0):
            raise ValueError("trajectory dips to or below the road plane (z <= 0)")
        img = src.copy()
        img[:, 2] = -img[:, 2]
        c = self.scene.speed_of_sound
        mics = self.scene.array.positions
        out = self._render_path(signal, src, mics, c, reflected=False)
        if self._refl_fir is not None:
            out = out + self._render_path(signal, img, mics, c, reflected=True)
        return out

    def path_snapshot(self, t: float, mic_index: int = 0) -> PathSnapshot:
        """Geometry of both paths for one microphone at time ``t``."""
        if not 0 <= mic_index < self.scene.array.n_mics:
            raise ValueError("mic_index out of range")
        pos = self.scene.trajectory.position(t)
        mic = self.scene.array.positions[mic_index]
        d1 = float(np.linalg.norm(pos - mic))
        d_refl = float(np.linalg.norm(image_source(pos) - mic))
        c = self.scene.speed_of_sound
        return PathSnapshot(t, pos, d1, d_refl, d1 / c, d_refl / c)

    # ------------------------------------------------------------- internals

    def _render_path(
        self,
        signal: np.ndarray,
        source: np.ndarray,
        mics: np.ndarray,
        c: float,
        *,
        reflected: bool,
    ) -> np.ndarray:
        """Render one propagation path to every microphone at once.

        The fractional-delay reads of all microphones happen in a single
        batched gather (``(n_mics, n_samples)`` delay matrix); the FIR stages
        run batched across microphones through the same stateful
        :class:`~repro.dsp.block_fir.BlockFir` / :class:`AirAbsorptionStage`
        objects the streaming corridor renderer uses, fed whole-signal — so
        offline and incremental renders are bit-identical by construction.
        """
        d = np.linalg.norm(source[None, :, :] - mics[:, None, :], axis=2)
        out = render_varying_delay(
            signal,
            d / c * self.fs,
            interpolation=self.interpolation,
            order=self.order,
        )
        out = out / np.maximum(d, self.min_distance)
        if reflected:
            fir = BlockFir(self._refl_fir, zero_phase=True)
            out = np.concatenate([fir.feed(out), fir.finish()], axis=-1)
        if self.air_absorption:
            stage = AirAbsorptionStage(
                self._air_bank, out.shape[-1], air_block=self.air_block
            )
            out = np.concatenate([stage.feed(out, d), stage.finish()], axis=-1)
        return out
