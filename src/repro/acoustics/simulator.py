"""Road-acoustics simulator (Fig. 2 of the paper).

For every microphone the received signal is the sum of two propagation paths:

- **direct**: a variable-length fractional delay line driven by the source
  signal (delay = d1 / c, producing Doppler), a spherical-spreading gain
  1 / d1, and an air-absorption FIR ``H_air(d1)``;
- **reflected**: the image-source path of total length d2 + d3 (Fig. 3),
  with gain 1 / (d2 + d3), the asphalt reflection FIR ``H_refl`` and the
  air-absorption FIR over the reflected path length.

Air absorption depends on the propagation distance, which changes as the
source moves; it is realized with block-wise filtering (windowed
overlap-add, filters re-designed per block from the block's mean distance
and cached on a quantized distance grid).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acoustics.air import air_absorption_fir
from repro.acoustics.asphalt import asphalt_reflection_fir
from repro.acoustics.delay_line import INTERPOLATORS, render_varying_delay
from repro.acoustics.environment import Scene
from repro.acoustics.geometry import image_source
from repro.dsp.filters import apply_fir

__all__ = ["RoadAcousticsSimulator", "PathSnapshot"]


@dataclass(frozen=True)
class PathSnapshot:
    """Geometry of both propagation paths at one instant (for inspection)."""

    t: float
    source_position: np.ndarray
    direct_distance: float
    reflected_distance: float
    direct_delay_s: float
    reflected_delay_s: float


class RoadAcousticsSimulator:
    """Simulate a moving source received by a static microphone array.

    Parameters
    ----------
    scene:
        The :class:`~repro.acoustics.environment.Scene` to simulate.
    fs:
        Sampling rate in Hz.
    interpolation:
        Fractional-delay interpolator: ``linear``, ``lagrange`` or ``sinc``.
    order:
        Lagrange order (only used with ``lagrange``).
    air_absorption:
        Apply the distance-dependent air-absorption filters.
    min_distance:
        Spreading gains are clipped at this distance to avoid the 1/r
        singularity when the source passes a microphone.
    air_block:
        Block length (samples) for the distance-varying air filter.
    """

    def __init__(
        self,
        scene: Scene,
        fs: float,
        *,
        interpolation: str = "lagrange",
        order: int = 3,
        air_absorption: bool = True,
        min_distance: float = 0.5,
        air_block: int = 4096,
        air_taps: int = 63,
        reflection_taps: int = 33,
    ) -> None:
        if fs <= 0:
            raise ValueError("fs must be positive")
        if interpolation not in INTERPOLATORS:
            raise ValueError(f"interpolation must be one of {INTERPOLATORS}")
        if min_distance <= 0:
            raise ValueError("min_distance must be positive")
        if air_block < 256:
            raise ValueError("air_block must be >= 256 samples")
        self.scene = scene
        self.fs = float(fs)
        self.interpolation = interpolation
        self.order = int(order)
        self.air_absorption = bool(air_absorption)
        self.min_distance = float(min_distance)
        self.air_block = int(air_block)
        self.air_taps = int(air_taps)
        self._air_cache: dict[int, np.ndarray] = {}
        self._refl_fir = (
            asphalt_reflection_fir(scene.surface, fs, n_taps=reflection_taps)
            if scene.surface is not None
            else None
        )

    # ------------------------------------------------------------------ API

    def simulate(self, signal: np.ndarray) -> np.ndarray:
        """Render the microphone signals for a source emitting ``signal``.

        Returns an array of shape ``(n_mics, len(signal))``.
        """
        signal = np.asarray(signal, dtype=np.float64)
        if signal.ndim != 1 or signal.size == 0:
            raise ValueError("signal must be a non-empty 1-D array")
        t = np.arange(signal.size) / self.fs
        src = self.scene.trajectory.positions(t)
        if np.any(src[:, 2] <= 0):
            raise ValueError("trajectory dips to or below the road plane (z <= 0)")
        img = src.copy()
        img[:, 2] = -img[:, 2]
        c = self.scene.speed_of_sound
        mics = self.scene.array.positions
        out = self._render_path(signal, src, mics, c, reflected=False)
        if self._refl_fir is not None:
            out = out + self._render_path(signal, img, mics, c, reflected=True)
        return out

    def path_snapshot(self, t: float, mic_index: int = 0) -> PathSnapshot:
        """Geometry of both paths for one microphone at time ``t``."""
        if not 0 <= mic_index < self.scene.array.n_mics:
            raise ValueError("mic_index out of range")
        pos = self.scene.trajectory.position(t)
        mic = self.scene.array.positions[mic_index]
        d1 = float(np.linalg.norm(pos - mic))
        d_refl = float(np.linalg.norm(image_source(pos) - mic))
        c = self.scene.speed_of_sound
        return PathSnapshot(t, pos, d1, d_refl, d1 / c, d_refl / c)

    # ------------------------------------------------------------- internals

    def _render_path(
        self,
        signal: np.ndarray,
        source: np.ndarray,
        mics: np.ndarray,
        c: float,
        *,
        reflected: bool,
    ) -> np.ndarray:
        """Render one propagation path to every microphone at once.

        The fractional-delay reads of all microphones happen in a single
        batched gather (``(n_mics, n_samples)`` delay matrix); only the
        distance-varying FIR stages remain per-mic.
        """
        d = np.linalg.norm(source[None, :, :] - mics[:, None, :], axis=2)
        out = render_varying_delay(
            signal,
            d / c * self.fs,
            interpolation=self.interpolation,
            order=self.order,
        )
        out = out / np.maximum(d, self.min_distance)
        for i in range(mics.shape[0]):
            if reflected:
                out[i] = apply_fir(out[i], self._refl_fir, zero_phase_pad=True)
            if self.air_absorption:
                out[i] = self._apply_air(out[i], d[i])
        return out

    def _air_fir(self, distance: float) -> np.ndarray:
        """Air-absorption FIR for a distance, cached on a 2 m grid."""
        key = max(1, int(round(distance / 2.0)))
        fir = self._air_cache.get(key)
        if fir is None:
            fir = air_absorption_fir(
                key * 2.0, self.fs, atmosphere=self.scene.atmosphere, n_taps=self.air_taps
            )
            self._air_cache[key] = fir
        return fir

    def _apply_air(self, x: np.ndarray, distances: np.ndarray) -> np.ndarray:
        """Distance-varying air absorption via windowed overlap-add blocks."""
        n = x.size
        block = min(self.air_block, n)
        hop = block // 2
        if hop == 0:
            return apply_fir(x, self._air_fir(float(distances.mean())), zero_phase_pad=True)
        win = 0.5 - 0.5 * np.cos(2 * np.pi * np.arange(block) / block)  # periodic Hann, COLA at 50%
        out = np.zeros(n + block)
        norm = np.zeros(n + block)
        start = 0
        while start < n:
            stop = min(start + block, n)
            seg = np.zeros(block)
            seg[: stop - start] = x[start:stop]
            fir = self._air_fir(float(distances[start:stop].mean()))
            seg = apply_fir(seg * win, fir, zero_phase_pad=True)
            out[start : start + block] += seg
            norm[start : start + block] += win
            start += hop
        # Interior samples see sum(win) == 1 (Hann COLA at 50 %); clamp the
        # under-covered first/last half-blocks to avoid amplifying edges.
        norm = np.maximum(norm, 0.5)
        return (out / norm)[:n]
