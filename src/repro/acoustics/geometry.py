"""Reflection geometry for the single road reflection (Fig. 3 of the paper).

The road surface is the plane z = 0.  The reflected path from source S to
microphone M is computed with the image-source method: the image S' of S
below the road has z -> -z, the reflected path length equals |S' - M|, and
the reflection point is where the segment S'-M crosses the road plane.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "image_source",
    "direct_distance",
    "reflected_distance",
    "reflection_point",
    "incidence_angle",
    "propagation_delay",
    "SPEED_OF_SOUND",
]

SPEED_OF_SOUND = 343.0
"""Reference speed of sound in air at ~20 degC, m/s."""


def _check_positions(p: np.ndarray, name: str) -> np.ndarray:
    p = np.asarray(p, dtype=np.float64)
    if p.ndim == 1:
        p = p[None, :]
    if p.ndim != 2 or p.shape[1] != 3:
        raise ValueError(f"{name} must be (3,) or (n, 3), got {p.shape}")
    return p


def image_source(source: np.ndarray) -> np.ndarray:
    """Mirror source position(s) across the road plane z = 0."""
    s = _check_positions(source, "source").copy()
    s[:, 2] = -s[:, 2]
    return s if np.asarray(source).ndim > 1 else s[0]


def direct_distance(source: np.ndarray, mic: np.ndarray) -> np.ndarray:
    """Direct path length d1 (Fig. 3), broadcasting over source positions."""
    s = _check_positions(source, "source")
    m = np.asarray(mic, dtype=np.float64)
    if m.shape != (3,):
        raise ValueError("mic must be a 3-vector")
    d = np.linalg.norm(s - m, axis=1)
    return d if np.asarray(source).ndim > 1 else float(d[0])


def reflected_distance(source: np.ndarray, mic: np.ndarray) -> np.ndarray:
    """Total reflected path length d2 + d3 via the image source."""
    return direct_distance(image_source(source), mic)


def reflection_point(source: np.ndarray, mic: np.ndarray) -> np.ndarray:
    """Point(s) on the road plane where the reflected ray bounces.

    Both endpoints must lie strictly above the road (z > 0); a source or mic
    on the road plane has a degenerate reflection and raises.
    """
    s = _check_positions(source, "source")
    m = np.asarray(mic, dtype=np.float64)
    if m.shape != (3,):
        raise ValueError("mic must be a 3-vector")
    if np.any(s[:, 2] <= 0) or m[2] <= 0:
        raise ValueError("source and mic must be strictly above the road plane (z > 0)")
    img = s.copy()
    img[:, 2] = -img[:, 2]
    # Parametric intersection of segment img -> m with z = 0.
    t = img[:, 2] / (img[:, 2] - m[2])
    pts = img + (m - img) * t[:, None]
    pts[:, 2] = 0.0
    return pts if np.asarray(source).ndim > 1 else pts[0]


def incidence_angle(source: np.ndarray, mic: np.ndarray) -> np.ndarray:
    """Angle of incidence at the reflection point, measured from the normal.

    Returns radians in [0, pi/2).  Grazing incidence approaches pi/2.
    """
    s = _check_positions(source, "source")
    m = np.asarray(mic, dtype=np.float64)
    rp = _check_positions(reflection_point(s, m), "reflection_point")
    incoming = rp - s
    horizontal = np.linalg.norm(incoming[:, :2], axis=1)
    vertical = np.abs(incoming[:, 2])
    ang = np.arctan2(horizontal, vertical)
    return ang if np.asarray(source).ndim > 1 else float(ang[0])


def propagation_delay(distance: np.ndarray, *, c: float = SPEED_OF_SOUND) -> np.ndarray:
    """Propagation delay in seconds for path length(s) in metres."""
    if c <= 0:
        raise ValueError("speed of sound must be positive")
    return np.asarray(distance, dtype=np.float64) / c
