"""Atmospheric absorption model (ISO 9613-1) and FIR realization.

The simulator of Fig. 2 applies air-absorption FIR filters ``H_air`` on both
the direct and the reflected propagation paths.  This module implements the
full ISO 9613-1 attenuation-coefficient formula (temperature, humidity and
pressure dependent) and designs a linear-phase FIR filter realizing the
distance-dependent magnitude response 10^(-alpha(f) * d / 20).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import fir_from_magnitude

__all__ = ["Atmosphere", "air_absorption_coefficient", "air_absorption_fir", "speed_of_sound"]

_T0 = 293.15  # reference temperature, K (20 degC)
_T01 = 273.16  # triple point of water, K
_PR = 101.325  # reference pressure, kPa


@dataclass(frozen=True)
class Atmosphere:
    """Atmospheric conditions for the absorption model.

    Attributes
    ----------
    temperature_c:
        Air temperature in degrees Celsius.
    humidity:
        Relative humidity in percent (0-100).
    pressure_kpa:
        Static pressure in kPa.
    """

    temperature_c: float = 20.0
    humidity: float = 50.0
    pressure_kpa: float = 101.325

    def __post_init__(self) -> None:
        if not -50.0 <= self.temperature_c <= 60.0:
            raise ValueError("temperature out of the model's validity range")
        if not 0.0 < self.humidity <= 100.0:
            raise ValueError("humidity must be in (0, 100]")
        if self.pressure_kpa <= 0:
            raise ValueError("pressure must be positive")

    @property
    def temperature_k(self) -> float:
        """Absolute temperature in Kelvin."""
        return self.temperature_c + 273.15


def speed_of_sound(atmosphere: Atmosphere | None = None) -> float:
    """Speed of sound (m/s) at the given conditions (ideal-gas approximation)."""
    atm = atmosphere or Atmosphere()
    return 343.2 * np.sqrt(atm.temperature_k / _T0)


def air_absorption_coefficient(freqs_hz: np.ndarray, atmosphere: Atmosphere | None = None) -> np.ndarray:
    """ISO 9613-1 pure-tone attenuation coefficient alpha, in dB per metre.

    Parameters
    ----------
    freqs_hz:
        Frequencies in Hz (non-negative).
    atmosphere:
        Conditions; defaults to 20 degC, 50 % RH, 101.325 kPa.
    """
    atm = atmosphere or Atmosphere()
    f = np.asarray(freqs_hz, dtype=np.float64)
    if np.any(f < 0):
        raise ValueError("frequencies must be non-negative")
    T = atm.temperature_k
    pa = atm.pressure_kpa / _PR  # normalized pressure

    # Saturation vapour pressure ratio and molar concentration of water vapour.
    csat = -6.8346 * (_T01 / T) ** 1.261 + 4.6151
    h = atm.humidity * (10.0**csat) / pa

    # Relaxation frequencies of oxygen and nitrogen (Hz).
    fr_o = pa * (24.0 + 4.04e4 * h * (0.02 + h) / (0.391 + h))
    fr_n = pa * (T / _T0) ** (-0.5) * (9.0 + 280.0 * h * np.exp(-4.170 * ((T / _T0) ** (-1.0 / 3.0) - 1.0)))

    f2 = f**2
    term_classical = 1.84e-11 / pa * np.sqrt(T / _T0)
    term_o = 0.01275 * np.exp(-2239.1 / T) / (fr_o + f2 / fr_o)
    term_n = 0.1068 * np.exp(-3352.0 / T) / (fr_n + f2 / fr_n)
    alpha = 8.686 * f2 * (term_classical + (T / _T0) ** (-2.5) * (term_o + term_n))
    return alpha


def air_absorption_fir(
    distance_m: float,
    fs: float,
    *,
    atmosphere: Atmosphere | None = None,
    n_taps: int = 63,
) -> np.ndarray:
    """Linear-phase FIR realizing air absorption over ``distance_m`` metres.

    The magnitude response is ``10 ** (-alpha(f) * d / 20)`` on a log-spaced
    grid up to Nyquist.
    """
    if distance_m < 0:
        raise ValueError("distance must be non-negative")
    if fs <= 0:
        raise ValueError("fs must be positive")
    grid = np.concatenate([[0.0], np.logspace(np.log10(20.0), np.log10(fs / 2.0), 64)])
    alpha = air_absorption_coefficient(grid, atmosphere)
    mags = 10.0 ** (-alpha * distance_m / 20.0)
    return fir_from_magnitude(grid, mags, n_taps, fs)
