"""Atmospheric absorption model (ISO 9613-1) and FIR realization.

The simulator of Fig. 2 applies air-absorption FIR filters ``H_air`` on both
the direct and the reflected propagation paths.  This module implements the
full ISO 9613-1 attenuation-coefficient formula (temperature, humidity and
pressure dependent) and designs a linear-phase FIR filter realizing the
distance-dependent magnitude response 10^(-alpha(f) * d / 20).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.dsp.block_fir import FirBank
from repro.dsp.filters import fir_from_magnitude

__all__ = [
    "Atmosphere",
    "AirFilterBank",
    "air_absorption_coefficient",
    "air_absorption_fir",
    "shared_air_filter_bank",
    "speed_of_sound",
]

_T0 = 293.15  # reference temperature, K (20 degC)
_T01 = 273.16  # triple point of water, K
_PR = 101.325  # reference pressure, kPa


@dataclass(frozen=True)
class Atmosphere:
    """Atmospheric conditions for the absorption model.

    Attributes
    ----------
    temperature_c:
        Air temperature in degrees Celsius.
    humidity:
        Relative humidity in percent (0-100).
    pressure_kpa:
        Static pressure in kPa.
    """

    temperature_c: float = 20.0
    humidity: float = 50.0
    pressure_kpa: float = 101.325

    def __post_init__(self) -> None:
        if not -50.0 <= self.temperature_c <= 60.0:
            raise ValueError("temperature out of the model's validity range")
        if not 0.0 < self.humidity <= 100.0:
            raise ValueError("humidity must be in (0, 100]")
        if self.pressure_kpa <= 0:
            raise ValueError("pressure must be positive")

    @property
    def temperature_k(self) -> float:
        """Absolute temperature in Kelvin."""
        return self.temperature_c + 273.15


def speed_of_sound(atmosphere: Atmosphere | None = None) -> float:
    """Speed of sound (m/s) at the given conditions (ideal-gas approximation)."""
    atm = atmosphere or Atmosphere()
    return 343.2 * np.sqrt(atm.temperature_k / _T0)


def air_absorption_coefficient(freqs_hz: np.ndarray, atmosphere: Atmosphere | None = None) -> np.ndarray:
    """ISO 9613-1 pure-tone attenuation coefficient alpha, in dB per metre.

    Parameters
    ----------
    freqs_hz:
        Frequencies in Hz (non-negative).
    atmosphere:
        Conditions; defaults to 20 degC, 50 % RH, 101.325 kPa.
    """
    atm = atmosphere or Atmosphere()
    f = np.asarray(freqs_hz, dtype=np.float64)
    if np.any(f < 0):
        raise ValueError("frequencies must be non-negative")
    T = atm.temperature_k
    pa = atm.pressure_kpa / _PR  # normalized pressure

    # Saturation vapour pressure ratio and molar concentration of water vapour.
    csat = -6.8346 * (_T01 / T) ** 1.261 + 4.6151
    h = atm.humidity * (10.0**csat) / pa

    # Relaxation frequencies of oxygen and nitrogen (Hz).
    fr_o = pa * (24.0 + 4.04e4 * h * (0.02 + h) / (0.391 + h))
    fr_n = pa * (T / _T0) ** (-0.5) * (9.0 + 280.0 * h * np.exp(-4.170 * ((T / _T0) ** (-1.0 / 3.0) - 1.0)))

    f2 = f**2
    term_classical = 1.84e-11 / pa * np.sqrt(T / _T0)
    term_o = 0.01275 * np.exp(-2239.1 / T) / (fr_o + f2 / fr_o)
    term_n = 0.1068 * np.exp(-3352.0 / T) / (fr_n + f2 / fr_n)
    alpha = 8.686 * f2 * (term_classical + (T / _T0) ** (-2.5) * (term_o + term_n))
    return alpha


def air_absorption_fir(
    distance_m: float,
    fs: float,
    *,
    atmosphere: Atmosphere | None = None,
    n_taps: int = 63,
) -> np.ndarray:
    """Linear-phase FIR realizing air absorption over ``distance_m`` metres.

    The magnitude response is ``10 ** (-alpha(f) * d / 20)`` on a log-spaced
    grid up to Nyquist.
    """
    if distance_m < 0:
        raise ValueError("distance must be non-negative")
    if fs <= 0:
        raise ValueError("fs must be positive")
    grid = np.concatenate([[0.0], np.logspace(np.log10(20.0), np.log10(fs / 2.0), 64)])
    alpha = air_absorption_coefficient(grid, atmosphere)
    mags = 10.0 ** (-alpha * distance_m / 20.0)
    return fir_from_magnitude(grid, mags, n_taps, fs)


class AirFilterBank:
    """Distance-gridded air-absorption filters with shared cached spectra.

    The simulator quantizes propagation distance to a ``grid_m`` grid (2 m by
    default) and needs one FIR per occupied bin.  This bank designs each
    bin's filter on first request, appends it to one
    :class:`~repro.dsp.block_fir.FirBank`, and lets every caller in a scene —
    all ``(node, vehicle)`` simulators, the streaming corridor renderer —
    share the cached filter *spectra*, so each bin is designed and
    FFT-transformed exactly once per scene (get a shared instance via
    :func:`shared_air_filter_bank`).
    """

    def __init__(
        self,
        fs: float,
        atmosphere: Atmosphere | None = None,
        *,
        n_taps: int = 63,
        grid_m: float = 2.0,
    ) -> None:
        if fs <= 0:
            raise ValueError("fs must be positive")
        if grid_m <= 0:
            raise ValueError("grid_m must be positive")
        self.fs = float(fs)
        self.atmosphere = atmosphere or Atmosphere()
        self.n_taps = int(n_taps)
        self.grid_m = float(grid_m)
        self._rows: dict[int, int] = {}
        self._bank: FirBank | None = None

    @property
    def n_bins(self) -> int:
        """Distance bins designed so far."""
        return len(self._rows)

    def key_of(self, distance_m: float) -> int:
        """Grid bin of a distance — the simulator's cache key, unchanged."""
        return max(1, int(round(distance_m / self.grid_m)))

    def index_of(self, key: int) -> int:
        """Bank row of a grid bin, designing the filter on first request."""
        row = self._rows.get(key)
        if row is None:
            fir = air_absorption_fir(
                key * self.grid_m, self.fs, atmosphere=self.atmosphere, n_taps=self.n_taps
            )
            if self._bank is None:
                self._bank = FirBank(fir)
                row = 0
            else:
                row = self._bank.extend(fir)
            self._rows[key] = row
        return row

    def fir(self, distance_m: float) -> np.ndarray:
        """The FIR for a distance (designed/cached on its grid bin)."""
        self.index_of(self.key_of(distance_m))
        return self._bank.filters[self._rows[self.key_of(distance_m)]]

    def convolve(
        self, x: np.ndarray, indices: np.ndarray, *, zero_phase: bool = False
    ) -> np.ndarray:
        """Batched convolution by bank row (see :meth:`FirBank.convolve`)."""
        return self._bank.convolve(x, indices, zero_phase=zero_phase)


@lru_cache(maxsize=32)
def shared_air_filter_bank(
    fs: float,
    atmosphere: Atmosphere | None = None,
    *,
    n_taps: int = 63,
    grid_m: float = 2.0,
) -> AirFilterBank:
    """Process-wide shared :class:`AirFilterBank` per parameter set.

    :class:`Atmosphere` is a frozen dataclass (hashable by value), so every
    simulator of a scene — one per ``(node, vehicle)`` pair — resolves to the
    same bank and the per-bin design/transform cost is paid once.
    """
    return AirFilterBank(fs, atmosphere, n_taps=n_taps, grid_m=grid_m)
