"""Wind-induced microphone noise.

Sec. II lists wind among the harsh-environment stressors of car-mounted
microphones.  Wind noise is *not* an acoustic field: turbulence interacts
with each capsule locally, so it is (a) concentrated at very low
frequencies (~1/f^2.5 spectral tilt below a few hundred Hz), (b) almost
uncorrelated between microphones even centimetres apart, and (c) gusty —
amplitude-modulated over seconds.  All three properties matter for
localization robustness studies: wind breaks the diffuse-field coherence
assumptions that traffic noise satisfies.
"""

from __future__ import annotations

import numpy as np

from repro.signals.noise import colored_noise

__all__ = ["wind_noise", "add_wind"]


def wind_noise(
    n_mics: int,
    duration: float,
    fs: float,
    *,
    speed_mps: float = 8.0,
    gust_rate_hz: float = 0.3,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Per-microphone wind noise, shape ``(n_mics, n_samples)``.

    Level scales with ~ speed^3 (turbulent pressure fluctuations); gusts are
    modelled by a slow log-normal amplitude modulation shared across mics
    (one wind field) while the fast noise itself is independent per capsule.
    """
    if n_mics < 1:
        raise ValueError("n_mics must be positive")
    if duration <= 0 or fs <= 0:
        raise ValueError("duration and fs must be positive")
    if speed_mps < 0:
        raise ValueError("speed must be non-negative")
    if gust_rate_hz <= 0:
        raise ValueError("gust_rate_hz must be positive")
    rng = rng or np.random.default_rng()
    n = int(round(duration * fs))
    # Shared gust envelope: smoothed Gaussian process, log-normal amplitude.
    n_ctrl = max(4, int(np.ceil(duration * gust_rate_hz)) + 2)
    ctrl = rng.standard_normal(n_ctrl)
    t_ctrl = np.linspace(0, n - 1, n_ctrl)
    envelope = np.exp(0.5 * np.interp(np.arange(n), t_ctrl, ctrl))
    level = (speed_mps / 8.0) ** 3
    out = np.empty((n_mics, n))
    for m in range(n_mics):
        bed = colored_noise(duration, fs, alpha=2.5, rng=rng)
        out[m] = level * envelope * bed
    return out


def add_wind(
    mic_signals: np.ndarray,
    fs: float,
    *,
    speed_mps: float = 8.0,
    level_db: float = -10.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Add wind noise to multichannel signals at a level relative to them.

    ``level_db`` sets the wind RMS relative to the signals' joint RMS.
    """
    mic_signals = np.asarray(mic_signals, dtype=np.float64)
    if mic_signals.ndim != 2:
        raise ValueError("mic_signals must be (n_mics, n_samples)")
    signal_rms = float(np.sqrt(np.mean(mic_signals**2)))
    if signal_rms == 0.0:
        raise ValueError("signals are silent; relative wind level is undefined")
    wind = wind_noise(
        mic_signals.shape[0],
        mic_signals.shape[1] / fs,
        fs,
        speed_mps=speed_mps,
        rng=rng,
    )[:, : mic_signals.shape[1]]
    wind_rms = float(np.sqrt(np.mean(wind**2))) or 1.0
    gain = signal_rms / wind_rms * 10.0 ** (level_db / 20.0)
    return mic_signals + gain * wind
