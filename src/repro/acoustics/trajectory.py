"""Source trajectories for the road-acoustics simulator.

The paper's simulator supports "a single, omnidirectional sound source moving
on an arbitrary trajectory with an arbitrary speed", including spline/Bezier
curves so that relative source-receiver speed can vary along the path.  Each
trajectory maps time (seconds) to a 3-D position (metres); all of them expose
a vectorized :meth:`Trajectory.positions`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "Trajectory",
    "StaticPosition",
    "LinearTrajectory",
    "WaypointTrajectory",
    "CircularTrajectory",
    "BezierTrajectory",
]


def _as_point(p, name: str = "point") -> np.ndarray:
    p = np.asarray(p, dtype=np.float64)
    if p.shape != (3,):
        raise ValueError(f"{name} must be a 3-vector, got shape {p.shape}")
    return p


class Trajectory(ABC):
    """Maps time in seconds to a 3-D position in metres."""

    @abstractmethod
    def position(self, t: float) -> np.ndarray:
        """Position at time ``t`` as a ``(3,)`` array."""

    def positions(self, t: np.ndarray) -> np.ndarray:
        """Positions at an array of times, shape ``(len(t), 3)``.

        Subclasses override this with a vectorized implementation; the base
        class falls back to a per-sample loop.
        """
        t = np.asarray(t, dtype=np.float64)
        return np.stack([self.position(float(ti)) for ti in t])

    def speed(self, t: float, *, dt: float = 1e-4) -> float:
        """Instantaneous speed (m/s) by central differencing."""
        p0 = self.position(max(0.0, t - dt))
        p1 = self.position(t + dt)
        return float(np.linalg.norm(p1 - p0) / (2 * dt if t >= dt else dt + t))


class StaticPosition(Trajectory):
    """A source that does not move."""

    def __init__(self, point) -> None:
        self._point = _as_point(point)

    def position(self, t: float) -> np.ndarray:
        return self._point.copy()

    def positions(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        return np.tile(self._point, (t.size, 1))


class LinearTrajectory(Trajectory):
    """Constant-velocity straight-line motion from ``start`` towards ``end``.

    The source continues past ``end`` at the same velocity (an approaching
    vehicle does not stop at the waypoint).
    """

    def __init__(self, start, end, speed: float) -> None:
        self.start = _as_point(start, "start")
        self.end = _as_point(end, "end")
        if speed <= 0:
            raise ValueError("speed must be positive")
        direction = self.end - self.start
        length = float(np.linalg.norm(direction))
        if length == 0:
            raise ValueError("start and end coincide; use StaticPosition")
        self.speed_mps = float(speed)
        self._unit = direction / length

    def position(self, t: float) -> np.ndarray:
        return self.start + self._unit * (self.speed_mps * t)

    def positions(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        return self.start[None, :] + np.outer(self.speed_mps * t, self._unit)


class WaypointTrajectory(Trajectory):
    """Piecewise-linear motion through waypoints at a constant speed.

    The source stops at the final waypoint.
    """

    def __init__(self, waypoints, speed: float) -> None:
        pts = np.asarray(waypoints, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3 or pts.shape[0] < 2:
            raise ValueError("waypoints must be an (n>=2, 3) array")
        if speed <= 0:
            raise ValueError("speed must be positive")
        seg = np.diff(pts, axis=0)
        seg_len = np.linalg.norm(seg, axis=1)
        if np.any(seg_len == 0):
            raise ValueError("consecutive waypoints must be distinct")
        self.waypoints = pts
        self.speed_mps = float(speed)
        self._cum = np.concatenate([[0.0], np.cumsum(seg_len)])

    @property
    def total_time(self) -> float:
        """Time to traverse the whole path, in seconds."""
        return float(self._cum[-1] / self.speed_mps)

    def _at_arclength(self, s: np.ndarray) -> np.ndarray:
        s = np.clip(s, 0.0, self._cum[-1])
        idx = np.clip(np.searchsorted(self._cum, s, side="right") - 1, 0, len(self._cum) - 2)
        seg_start = self._cum[idx]
        seg_len = self._cum[idx + 1] - seg_start
        frac = (s - seg_start) / seg_len
        p0 = self.waypoints[idx]
        p1 = self.waypoints[idx + 1]
        return p0 + (p1 - p0) * frac[:, None]

    def position(self, t: float) -> np.ndarray:
        return self._at_arclength(np.array([self.speed_mps * max(t, 0.0)]))[0]

    def positions(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        return self._at_arclength(self.speed_mps * np.clip(t, 0.0, None))


class CircularTrajectory(Trajectory):
    """Constant-speed motion on a circle in the z = height plane."""

    def __init__(self, center, radius: float, speed: float, *, phase: float = 0.0) -> None:
        self.center = _as_point(center, "center")
        if radius <= 0 or speed <= 0:
            raise ValueError("radius and speed must be positive")
        self.radius = float(radius)
        self.speed_mps = float(speed)
        self.phase = float(phase)

    def positions(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        ang = self.phase + self.speed_mps * t / self.radius
        out = np.tile(self.center, (t.size, 1))
        out[:, 0] += self.radius * np.cos(ang)
        out[:, 1] += self.radius * np.sin(ang)
        return out

    def position(self, t: float) -> np.ndarray:
        return self.positions(np.array([t]))[0]


class BezierTrajectory(Trajectory):
    """Cubic Bezier path traversed with approximately constant speed.

    The curve is re-parameterized by arc length (sampled densely once at
    construction) so that ``speed`` is respected along the whole path; the
    source stops at the end of the curve.
    """

    _N_ARC_SAMPLES = 2048

    def __init__(self, p0, p1, p2, p3, speed: float) -> None:
        self.ctrl = np.stack([_as_point(p, f"p{i}") for i, p in enumerate((p0, p1, p2, p3))])
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.speed_mps = float(speed)
        u = np.linspace(0.0, 1.0, self._N_ARC_SAMPLES)
        pts = self._bezier(u)
        seg = np.linalg.norm(np.diff(pts, axis=0), axis=1)
        self._arc = np.concatenate([[0.0], np.cumsum(seg)])
        self._u = u

    def _bezier(self, u: np.ndarray) -> np.ndarray:
        u = u[:, None]
        b = (
            (1 - u) ** 3 * self.ctrl[0]
            + 3 * (1 - u) ** 2 * u * self.ctrl[1]
            + 3 * (1 - u) * u**2 * self.ctrl[2]
            + u**3 * self.ctrl[3]
        )
        return b

    @property
    def length(self) -> float:
        """Approximate arc length of the curve in metres."""
        return float(self._arc[-1])

    def positions(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        s = np.clip(self.speed_mps * np.clip(t, 0.0, None), 0.0, self._arc[-1])
        u = np.interp(s, self._arc, self._u)
        return self._bezier(u)

    def position(self, t: float) -> np.ndarray:
        return self.positions(np.array([t]))[0]
