"""Asphalt reflection model and FIR realization (``H_refl`` in Fig. 2).

The paper models the road surface's reflection with a user-adjustable FIR
filter designed from the asphalt's acoustic absorption characteristics.  We
ship octave-band absorption tables for common road surfaces (dense asphalt
reflects strongly; porous "quiet" asphalt absorbs heavily above 500 Hz) and
design the reflection filter as ``|R(f)| = sqrt(1 - absorption(f))``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.dsp.filters import fir_from_magnitude, octave_band_centers

__all__ = ["RoadSurface", "SURFACE_PRESETS", "reflection_magnitude", "asphalt_reflection_fir"]

_BANDS = octave_band_centers(62.5, 8)  # 62.5 Hz ... 8 kHz


@dataclass(frozen=True)
class RoadSurface:
    """Acoustic description of a road surface.

    Attributes
    ----------
    name:
        Surface label.
    band_freqs_hz:
        Octave-band centre frequencies of the absorption table.
    absorption:
        Energy absorption coefficient per band, each in [0, 1).
    """

    name: str
    band_freqs_hz: tuple[float, ...] = tuple(_BANDS)
    absorption: tuple[float, ...] = (0.02, 0.02, 0.03, 0.03, 0.04, 0.05, 0.06, 0.08)

    def __post_init__(self) -> None:
        if len(self.band_freqs_hz) != len(self.absorption):
            raise ValueError("band_freqs_hz and absorption must have equal length")
        if len(self.absorption) < 2:
            raise ValueError("need at least two absorption bands")
        if any(not 0.0 <= a < 1.0 for a in self.absorption):
            raise ValueError("absorption coefficients must lie in [0, 1)")
        if any(f2 <= f1 for f1, f2 in zip(self.band_freqs_hz, self.band_freqs_hz[1:])):
            raise ValueError("band frequencies must be strictly increasing")


SURFACE_PRESETS: dict[str, RoadSurface] = {
    "dense_asphalt": RoadSurface("dense_asphalt"),
    "porous_asphalt": RoadSurface(
        "porous_asphalt",
        absorption=(0.05, 0.08, 0.15, 0.35, 0.6, 0.7, 0.6, 0.5),
    ),
    "concrete": RoadSurface(
        "concrete",
        absorption=(0.01, 0.01, 0.015, 0.02, 0.02, 0.02, 0.03, 0.04),
    ),
    "wet_asphalt": RoadSurface(
        "wet_asphalt",
        absorption=(0.01, 0.01, 0.02, 0.02, 0.03, 0.03, 0.04, 0.05),
    ),
}


def reflection_magnitude(freqs_hz: np.ndarray, surface: RoadSurface) -> np.ndarray:
    """Pressure reflection-coefficient magnitude |R(f)| for a surface.

    Interpolates the band absorption table in log-frequency and converts the
    energy absorption coefficient to a pressure magnitude.
    """
    f = np.asarray(freqs_hz, dtype=np.float64)
    if np.any(f < 0):
        raise ValueError("frequencies must be non-negative")
    bands = np.asarray(surface.band_freqs_hz)
    absorption = np.asarray(surface.absorption)
    log_f = np.log10(np.maximum(f, 1.0))
    alpha = np.interp(log_f, np.log10(bands), absorption, left=absorption[0], right=absorption[-1])
    return np.sqrt(1.0 - alpha)


def asphalt_reflection_fir(surface: RoadSurface | str, fs: float, *, n_taps: int = 33) -> np.ndarray:
    """Linear-phase FIR realizing the surface reflection magnitude.

    ``surface`` may be a :class:`RoadSurface` or the name of a preset in
    :data:`SURFACE_PRESETS`.  Designs are cached per ``(surface, fs,
    n_taps)`` — every ``(node, vehicle)`` simulator of a corridor scene asks
    for the same filter — and the returned array is read-only.
    """
    if isinstance(surface, str):
        try:
            surface = SURFACE_PRESETS[surface]
        except KeyError:
            raise ValueError(
                f"unknown surface preset {surface!r}; available: {sorted(SURFACE_PRESETS)}"
            ) from None
    if fs <= 0:
        raise ValueError("fs must be positive")
    return _design_reflection_fir(surface, float(fs), int(n_taps))


@lru_cache(maxsize=64)
def _design_reflection_fir(surface: RoadSurface, fs: float, n_taps: int) -> np.ndarray:
    grid = np.concatenate([[0.0], np.logspace(np.log10(20.0), np.log10(fs / 2.0), 64)])
    mags = reflection_magnitude(grid, surface)
    fir = fir_from_magnitude(grid, mags, n_taps, fs)
    fir.flags.writeable = False
    return fir
