"""Road-acoustics simulator (pyroadacoustics reimplementation, Fig. 2-3)."""

from repro.acoustics.air import (
    Atmosphere,
    air_absorption_coefficient,
    air_absorption_fir,
    speed_of_sound,
)
from repro.acoustics.asphalt import (
    SURFACE_PRESETS,
    RoadSurface,
    asphalt_reflection_fir,
    reflection_magnitude,
)
from repro.acoustics.delay_line import (
    INTERPOLATORS,
    VariableDelayLine,
    render_varying_delay,
)
from repro.acoustics.environment import MicrophoneArray, Scene
from repro.acoustics.geometry import (
    SPEED_OF_SOUND,
    direct_distance,
    image_source,
    incidence_angle,
    propagation_delay,
    reflected_distance,
    reflection_point,
)
from repro.acoustics.simulator import PathSnapshot, RoadAcousticsSimulator
from repro.acoustics.trajectory import (
    BezierTrajectory,
    CircularTrajectory,
    LinearTrajectory,
    StaticPosition,
    Trajectory,
    WaypointTrajectory,
)

from repro.acoustics.diffuse import diffuse_coherence, diffuse_noise_field
from repro.acoustics.wind import add_wind, wind_noise
__all__ = [
    "add_wind",
    "wind_noise",

    "diffuse_coherence",
    "diffuse_noise_field",

    "Atmosphere",
    "air_absorption_coefficient",
    "air_absorption_fir",
    "speed_of_sound",
    "SURFACE_PRESETS",
    "RoadSurface",
    "asphalt_reflection_fir",
    "reflection_magnitude",
    "INTERPOLATORS",
    "VariableDelayLine",
    "render_varying_delay",
    "MicrophoneArray",
    "Scene",
    "SPEED_OF_SOUND",
    "direct_distance",
    "image_source",
    "incidence_angle",
    "propagation_delay",
    "reflected_distance",
    "reflection_point",
    "PathSnapshot",
    "RoadAcousticsSimulator",
    "BezierTrajectory",
    "CircularTrajectory",
    "LinearTrajectory",
    "StaticPosition",
    "Trajectory",
    "WaypointTrajectory",
]
