"""Scene description for the road-acoustics simulator.

Bundles the moving source, the static microphone array, the road surface and
the atmospheric conditions into a single validated object consumed by
:class:`repro.acoustics.simulator.RoadAcousticsSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acoustics.air import Atmosphere, speed_of_sound
from repro.acoustics.asphalt import SURFACE_PRESETS, RoadSurface
from repro.acoustics.trajectory import Trajectory

__all__ = ["MicrophoneArray", "Scene"]


@dataclass(frozen=True)
class MicrophoneArray:
    """A set of static omnidirectional microphones.

    Attributes
    ----------
    positions:
        Array of shape ``(n_mics, 3)``, metres; all strictly above the road
        plane (z > 0).
    """

    positions: np.ndarray

    def __post_init__(self) -> None:
        p = np.asarray(self.positions, dtype=np.float64)
        if p.ndim != 2 or p.shape[1] != 3 or p.shape[0] < 1:
            raise ValueError("positions must be an (n_mics >= 1, 3) array")
        if np.any(p[:, 2] <= 0):
            raise ValueError("all microphones must sit strictly above the road (z > 0)")
        object.__setattr__(self, "positions", p)

    @property
    def n_mics(self) -> int:
        """Number of microphones."""
        return self.positions.shape[0]

    @property
    def centroid(self) -> np.ndarray:
        """Geometric centre of the array."""
        return self.positions.mean(axis=0)

    @property
    def aperture(self) -> float:
        """Largest inter-microphone distance, metres."""
        if self.n_mics == 1:
            return 0.0
        diffs = self.positions[:, None, :] - self.positions[None, :, :]
        return float(np.linalg.norm(diffs, axis=2).max())


@dataclass
class Scene:
    """Complete simulation scene.

    Attributes
    ----------
    trajectory:
        Source motion (see :mod:`repro.acoustics.trajectory`); positions must
        stay strictly above the road plane.
    array:
        Receiving :class:`MicrophoneArray`.
    surface:
        Road surface model or preset name; ``None`` disables the reflection
        path entirely (free-field simulation).
    atmosphere:
        Atmospheric conditions (temperature/humidity/pressure).
    """

    trajectory: Trajectory
    array: MicrophoneArray
    surface: RoadSurface | str | None = "dense_asphalt"
    atmosphere: Atmosphere = field(default_factory=Atmosphere)

    def __post_init__(self) -> None:
        if isinstance(self.surface, str):
            try:
                self.surface = SURFACE_PRESETS[self.surface]
            except KeyError:
                raise ValueError(
                    f"unknown surface preset {self.surface!r}; available: {sorted(SURFACE_PRESETS)}"
                ) from None

    @property
    def speed_of_sound(self) -> float:
        """Speed of sound under the scene's atmospheric conditions, m/s."""
        return float(speed_of_sound(self.atmosphere))
