"""Variable-length fractional delay lines.

The paper's simulator implements acoustic propagation with variable-length
delay lines [Smith, *Physical Audio Signal Processing*]: the source writes
into the line at the sample rate and each receiver reads at a time-varying
(fractional) delay equal to the propagation time.  A delay that shrinks as
the source approaches compresses the waveform and raises its pitch — the
Doppler effect emerges from the geometry with no explicit frequency shift.

Two implementations are provided:

- :func:`render_varying_delay` — vectorized offline evaluation used by the
  simulator; supports linear, Lagrange and windowed-sinc interpolation.
- :class:`VariableDelayLine` — a streaming ring-buffer version suitable for
  sample-by-sample processing (used by the real-time pipeline tests).
"""

from __future__ import annotations

import numpy as np

from repro.dsp.filters import lagrange_fractional_delay

__all__ = ["VariableDelayLine", "render_varying_delay", "INTERPOLATORS"]

INTERPOLATORS = ("linear", "lagrange", "sinc")


def _gather(x: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Read ``x`` at integer indices of any shape, zero outside its support."""
    valid = (idx >= 0) & (idx < x.size)
    return np.where(valid, x[np.clip(idx, 0, x.size - 1)], 0.0)


def _interp_linear(x: np.ndarray, pos: np.ndarray) -> np.ndarray:
    idx = np.floor(pos).astype(np.int64)
    frac = pos - idx
    return (1.0 - frac) * _gather(x, idx) + frac * _gather(x, idx + 1)


def _interp_lagrange(x: np.ndarray, pos: np.ndarray, order: int) -> np.ndarray:
    # Evaluate an order-N Lagrange interpolator at each fractional position:
    # the tap weights depend only on the fractional part (closed-form
    # product), and all (position, tap) reads happen in one batched gather.
    base = np.floor(pos).astype(np.int64) - (order - 1) // 2
    frac = pos - np.floor(pos)
    offsets = np.arange(order + 1)
    d = frac + (order - 1) // 2
    coeffs = np.ones((*pos.shape, order + 1))
    for k in range(order + 1):
        others = offsets[offsets != k]
        num = d[..., None] - others
        den = float(np.prod(k - others))
        coeffs[..., k] = np.prod(num, axis=-1) / den
    taps = _gather(x, base[..., None] + offsets)  # (..., order + 1)
    return np.einsum("...t,...t->...", coeffs, taps)


def _interp_sinc(x: np.ndarray, pos: np.ndarray, half_width: int) -> np.ndarray:
    base = np.floor(pos).astype(np.int64)
    frac = pos - base
    out = np.zeros_like(pos)
    # Accumulate per tap: each iteration is one batched gather over every
    # (receiver, sample) position.  Materializing the full (..., n, taps)
    # cube instead would cost gigabytes for long sinc renders.
    for k in range(-half_width + 1, half_width + 1):
        arg = k - frac
        win = np.clip(0.5 + 0.5 * np.cos(np.pi * arg / half_width), 0.0, None)
        out += np.sinc(arg) * win * _gather(x, base + k)
    return out


def render_varying_delay(
    x: np.ndarray,
    delay_samples: np.ndarray,
    *,
    interpolation: str = "lagrange",
    order: int = 3,
    sinc_half_width: int = 16,
) -> np.ndarray:
    """Read signal ``x`` through a time-varying fractional delay.

    Output sample ``n`` equals ``x[n - delay_samples[n]]`` evaluated with the
    chosen fractional interpolator.  The source signal is treated as zero
    outside its support, so reads before the wavefront arrives return the
    interpolator's (band-limited) onset tail and exact zeros further out.

    Every (output sample, interpolator tap) read is a single batched gather
    into ``x`` — the same strategy :class:`repro.ssl.srp_fast.FastSrpPhat`
    uses for its windowed-sinc GCC reads — so one call can render many
    receivers at once.

    Parameters
    ----------
    x:
        Source signal written into the delay line at the sample rate.
    delay_samples:
        Per-output-sample delay, in (fractional) samples; all values
        non-negative.  Shape ``(len(x),)`` for a single receiver, or
        ``(..., len(x))`` to render a batch of receivers (e.g. one row per
        microphone) in one gather; the output has the same shape.
    interpolation:
        ``linear``, ``lagrange`` (default, order ``order``) or ``sinc``.
    """
    x = np.asarray(x, dtype=np.float64)
    delay_samples = np.asarray(delay_samples, dtype=np.float64)
    if x.ndim != 1 or x.size == 0 or delay_samples.shape[-1:] != x.shape:
        raise ValueError("x must be 1-D and delay_samples (..., len(x))")
    if np.any(delay_samples < 0):
        raise ValueError("delays must be non-negative")
    if interpolation not in INTERPOLATORS:
        raise ValueError(f"unknown interpolation {interpolation!r}; expected {INTERPOLATORS}")
    pos = np.arange(x.size) - delay_samples
    if interpolation == "linear":
        return _interp_linear(x, pos)
    if interpolation == "lagrange":
        if order < 1:
            raise ValueError("order must be >= 1")
        return _interp_lagrange(x, pos, order)
    if sinc_half_width < 2:
        raise ValueError("sinc_half_width must be >= 2")
    return _interp_sinc(x, pos, sinc_half_width)


class VariableDelayLine:
    """Streaming ring-buffer delay line with fractional (Lagrange) reads.

    Example
    -------
    >>> dl = VariableDelayLine(max_delay=1000)
    >>> out = [dl.process(xn, 44.25) for xn in signal]
    """

    def __init__(self, max_delay: float, *, order: int = 3) -> None:
        if max_delay <= 0:
            raise ValueError("max_delay must be positive")
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = int(order)
        self._size = int(np.ceil(max_delay)) + 2 * order + 4
        self._buf = np.zeros(self._size)
        self._n_written = 0
        self.max_delay = float(max_delay)

    def write(self, sample: float) -> None:
        """Push one input sample into the line."""
        self._buf[self._n_written % self._size] = sample
        self._n_written += 1

    def read(self, delay: float) -> float:
        """Read the line output at a fractional ``delay`` samples in the past.

        Reads that land before the first written sample (the wavefront has
        not arrived yet) return 0, matching :func:`render_varying_delay`.
        """
        if not 0.0 <= delay <= self.max_delay:
            raise ValueError(f"delay {delay} outside [0, {self.max_delay}]")
        pos = (self._n_written - 1) - delay
        floor_pos = int(np.floor(pos))
        frac = pos - floor_pos
        h = lagrange_fractional_delay(frac, self.order)
        idx = floor_pos - (self.order - 1) // 2 + np.arange(self.order + 1)
        valid = (idx >= 0) & (idx < self._n_written) & (idx > self._n_written - self._size)
        taps = np.where(valid, self._buf[idx % self._size], 0.0)
        return float(h @ taps)

    def process(self, sample: float, delay: float) -> float:
        """Write one sample, then read at ``delay`` — one tick of the line."""
        self.write(sample)
        return self.read(delay)

    def reset(self) -> None:
        """Clear the line state."""
        self._buf[:] = 0.0
        self._n_written = 0
