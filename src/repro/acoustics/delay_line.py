"""Variable-length fractional delay lines.

The paper's simulator implements acoustic propagation with variable-length
delay lines [Smith, *Physical Audio Signal Processing*]: the source writes
into the line at the sample rate and each receiver reads at a time-varying
(fractional) delay equal to the propagation time.  A delay that shrinks as
the source approaches compresses the waveform and raises its pitch — the
Doppler effect emerges from the geometry with no explicit frequency shift.

Two implementations are provided:

- :func:`render_varying_delay` — vectorized offline evaluation used by the
  simulator; supports linear, Lagrange and windowed-sinc interpolation.
- :class:`VariableDelayLine` — a streaming ring-buffer version suitable for
  sample-by-sample processing (used by the real-time pipeline tests).
"""

from __future__ import annotations

import numpy as np

from repro.dsp.filters import lagrange_fractional_delay

__all__ = ["VariableDelayLine", "render_varying_delay", "INTERPOLATORS"]

INTERPOLATORS = ("linear", "lagrange", "sinc")


def _interp_linear(x: np.ndarray, pos: np.ndarray) -> np.ndarray:
    idx = np.floor(pos).astype(np.int64)
    frac = pos - idx
    v0 = (idx >= 0) & (idx < x.size)
    v1 = (idx + 1 >= 0) & (idx + 1 < x.size)
    t0 = np.where(v0, x[np.clip(idx, 0, x.size - 1)], 0.0)
    t1 = np.where(v1, x[np.clip(idx + 1, 0, x.size - 1)], 0.0)
    return (1.0 - frac) * t0 + frac * t1


def _interp_lagrange(x: np.ndarray, pos: np.ndarray, order: int) -> np.ndarray:
    # Evaluate an order-N Lagrange interpolator at each fractional position.
    base = np.floor(pos).astype(np.int64) - (order - 1) // 2
    frac = pos - np.floor(pos)
    out = np.zeros_like(pos)
    # Vectorize over taps: coefficients depend only on frac, computed per
    # sample via the closed-form product.
    offsets = np.arange(order + 1)
    d = frac + (order - 1) // 2
    coeffs = np.ones((pos.size, order + 1))
    for k in range(order + 1):
        others = offsets[offsets != k]
        num = d[:, None] - others[None, :]
        den = float(np.prod(k - others))
        coeffs[:, k] = np.prod(num, axis=1) / den
    for k in range(order + 1):
        idx = base + k
        valid = (idx >= 0) & (idx < x.size)
        out += coeffs[:, k] * np.where(valid, x[np.clip(idx, 0, x.size - 1)], 0.0)
    return out


def _interp_sinc(x: np.ndarray, pos: np.ndarray, half_width: int) -> np.ndarray:
    base = np.floor(pos).astype(np.int64)
    frac = pos - base
    out = np.zeros_like(pos)
    for k in range(-half_width + 1, half_width + 1):
        idx = base + k
        arg = k - frac
        win = 0.5 + 0.5 * np.cos(np.pi * arg / half_width)
        win = np.clip(win, 0.0, None)
        kern = np.sinc(arg) * win
        valid = (idx >= 0) & (idx < x.size)
        out += kern * np.where(valid, x[np.clip(idx, 0, x.size - 1)], 0.0)
    return out


def render_varying_delay(
    x: np.ndarray,
    delay_samples: np.ndarray,
    *,
    interpolation: str = "lagrange",
    order: int = 3,
    sinc_half_width: int = 16,
) -> np.ndarray:
    """Read signal ``x`` through a time-varying fractional delay.

    Output sample ``n`` equals ``x[n - delay_samples[n]]`` evaluated with the
    chosen fractional interpolator.  The source signal is treated as zero
    outside its support, so reads before the wavefront arrives return the
    interpolator's (band-limited) onset tail and exact zeros further out.

    Parameters
    ----------
    x:
        Source signal written into the delay line at the sample rate.
    delay_samples:
        Per-output-sample delay, in (fractional) samples; same length as
        ``x``, all values non-negative.
    interpolation:
        ``linear``, ``lagrange`` (default, order ``order``) or ``sinc``.
    """
    x = np.asarray(x, dtype=np.float64)
    delay_samples = np.asarray(delay_samples, dtype=np.float64)
    if x.ndim != 1 or delay_samples.shape != x.shape:
        raise ValueError("x and delay_samples must be 1-D arrays of equal length")
    if np.any(delay_samples < 0):
        raise ValueError("delays must be non-negative")
    if interpolation not in INTERPOLATORS:
        raise ValueError(f"unknown interpolation {interpolation!r}; expected {INTERPOLATORS}")
    pos = np.arange(x.size) - delay_samples
    if interpolation == "linear":
        return _interp_linear(x, pos)
    if interpolation == "lagrange":
        if order < 1:
            raise ValueError("order must be >= 1")
        return _interp_lagrange(x, pos, order)
    if sinc_half_width < 2:
        raise ValueError("sinc_half_width must be >= 2")
    return _interp_sinc(x, pos, sinc_half_width)


class VariableDelayLine:
    """Streaming ring-buffer delay line with fractional (Lagrange) reads.

    Example
    -------
    >>> dl = VariableDelayLine(max_delay=1000)
    >>> out = [dl.process(xn, 44.25) for xn in signal]
    """

    def __init__(self, max_delay: float, *, order: int = 3) -> None:
        if max_delay <= 0:
            raise ValueError("max_delay must be positive")
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = int(order)
        self._size = int(np.ceil(max_delay)) + 2 * order + 4
        self._buf = np.zeros(self._size)
        self._n_written = 0
        self.max_delay = float(max_delay)

    def write(self, sample: float) -> None:
        """Push one input sample into the line."""
        self._buf[self._n_written % self._size] = sample
        self._n_written += 1

    def read(self, delay: float) -> float:
        """Read the line output at a fractional ``delay`` samples in the past.

        Reads that land before the first written sample (the wavefront has
        not arrived yet) return 0, matching :func:`render_varying_delay`.
        """
        if not 0.0 <= delay <= self.max_delay:
            raise ValueError(f"delay {delay} outside [0, {self.max_delay}]")
        pos = (self._n_written - 1) - delay
        floor_pos = int(np.floor(pos))
        frac = pos - floor_pos
        h = lagrange_fractional_delay(frac, self.order)
        base = floor_pos - (self.order - 1) // 2
        acc = 0.0
        for k in range(self.order + 1):
            idx = base + k
            if 0 <= idx < self._n_written and idx > self._n_written - self._size:
                acc += h[k] * self._buf[idx % self._size]
        return acc

    def process(self, sample: float, delay: float) -> float:
        """Write one sample, then read at ``delay`` — one tick of the line."""
        self.write(sample)
        return self.read(delay)

    def reset(self) -> None:
        """Clear the line state."""
        self._buf[:] = 0.0
        self._n_written = 0
