"""Variable-length fractional delay lines.

The paper's simulator implements acoustic propagation with variable-length
delay lines [Smith, *Physical Audio Signal Processing*]: the source writes
into the line at the sample rate and each receiver reads at a time-varying
(fractional) delay equal to the propagation time.  A delay that shrinks as
the source approaches compresses the waveform and raises its pitch — the
Doppler effect emerges from the geometry with no explicit frequency shift.

Three implementations are provided:

- :func:`render_varying_delay` — vectorized offline evaluation used by the
  simulator; supports linear, Lagrange and windowed-sinc interpolation.
- :class:`StreamingDelayReader` — the same vectorized read, stateful across
  block boundaries: feed source samples as they exist, read output hop
  slices on demand, bit-identical to one offline call over the whole
  signal.  This is what lets :class:`repro.fleet.corridor.CorridorStream`
  render corridors incrementally instead of whole scenes up front.
- :class:`VariableDelayLine` — a sample-by-sample ring-buffer version
  (used by the real-time pipeline tests).
"""

from __future__ import annotations

import numpy as np

from repro.dsp.filters import lagrange_fractional_delay

__all__ = [
    "VariableDelayLine",
    "StreamingDelayReader",
    "render_varying_delay",
    "INTERPOLATORS",
]

INTERPOLATORS = ("linear", "lagrange", "sinc")


def _gather(x: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Read ``x`` at integer indices of any shape, zero outside its support."""
    valid = (idx >= 0) & (idx < x.size)
    return np.where(valid, x[np.clip(idx, 0, x.size - 1)], 0.0)


def _interp_linear(x: np.ndarray, pos: np.ndarray) -> np.ndarray:
    idx = np.floor(pos).astype(np.int64)
    frac = pos - idx
    return (1.0 - frac) * _gather(x, idx) + frac * _gather(x, idx + 1)


def _interp_lagrange(x: np.ndarray, pos: np.ndarray, order: int) -> np.ndarray:
    # Evaluate an order-N Lagrange interpolator at each fractional position:
    # the tap weights depend only on the fractional part (closed-form
    # product), and all (position, tap) reads happen in one batched gather.
    base = np.floor(pos).astype(np.int64) - (order - 1) // 2
    frac = pos - np.floor(pos)
    offsets = np.arange(order + 1)
    d = frac + (order - 1) // 2
    coeffs = np.ones((*pos.shape, order + 1))
    for k in range(order + 1):
        others = offsets[offsets != k]
        num = d[..., None] - others
        den = float(np.prod(k - others))
        coeffs[..., k] = np.prod(num, axis=-1) / den
    taps = _gather(x, base[..., None] + offsets)  # (..., order + 1)
    return np.einsum("...t,...t->...", coeffs, taps)


def _interp_sinc(x: np.ndarray, pos: np.ndarray, half_width: int) -> np.ndarray:
    base = np.floor(pos).astype(np.int64)
    frac = pos - base
    out = np.zeros_like(pos)
    # Accumulate per tap: each iteration is one batched gather over every
    # (receiver, sample) position.  Materializing the full (..., n, taps)
    # cube instead would cost gigabytes for long sinc renders.
    for k in range(-half_width + 1, half_width + 1):
        arg = k - frac
        win = np.clip(0.5 + 0.5 * np.cos(np.pi * arg / half_width), 0.0, None)
        out += np.sinc(arg) * win * _gather(x, base + k)
    return out


def render_varying_delay(
    x: np.ndarray,
    delay_samples: np.ndarray,
    *,
    interpolation: str = "lagrange",
    order: int = 3,
    sinc_half_width: int = 16,
) -> np.ndarray:
    """Read signal ``x`` through a time-varying fractional delay.

    Output sample ``n`` equals ``x[n - delay_samples[n]]`` evaluated with the
    chosen fractional interpolator.  The source signal is treated as zero
    outside its support, so reads before the wavefront arrives return the
    interpolator's (band-limited) onset tail and exact zeros further out.

    Every (output sample, interpolator tap) read is a single batched gather
    into ``x`` — the same strategy :class:`repro.ssl.srp_fast.FastSrpPhat`
    uses for its windowed-sinc GCC reads — so one call can render many
    receivers at once.

    Parameters
    ----------
    x:
        Source signal written into the delay line at the sample rate.
    delay_samples:
        Per-output-sample delay, in (fractional) samples; all values
        non-negative.  Shape ``(len(x),)`` for a single receiver, or
        ``(..., len(x))`` to render a batch of receivers (e.g. one row per
        microphone) in one gather; the output has the same shape.
    interpolation:
        ``linear``, ``lagrange`` (default, order ``order``) or ``sinc``.
    """
    x = np.asarray(x, dtype=np.float64)
    delay_samples = np.asarray(delay_samples, dtype=np.float64)
    if x.ndim != 1 or x.size == 0 or delay_samples.shape[-1:] != x.shape:
        raise ValueError("x must be 1-D and delay_samples (..., len(x))")
    if np.any(delay_samples < 0):
        raise ValueError("delays must be non-negative")
    if interpolation not in INTERPOLATORS:
        raise ValueError(f"unknown interpolation {interpolation!r}; expected {INTERPOLATORS}")
    pos = np.arange(x.size) - delay_samples
    if interpolation == "linear":
        return _interp_linear(x, pos)
    if interpolation == "lagrange":
        if order < 1:
            raise ValueError("order must be >= 1")
        return _interp_lagrange(x, pos, order)
    if sinc_half_width < 2:
        raise ValueError("sinc_half_width must be >= 2")
    return _interp_sinc(x, pos, sinc_half_width)


class StreamingDelayReader:
    """Block-streaming fractional-delay read, bit-identical to the offline one.

    :func:`render_varying_delay` evaluates ``out[n] = x[n - delay[n]]`` over
    a whole signal at once; this class evaluates the *same* expression —
    the same interpolators, the same batched gathers, the same zero
    extension outside the source's support — but lets the caller interleave
    feeding source samples and reading output slices:

    >>> r = StreamingDelayReader(interpolation="linear")
    >>> r.feed(x[:4096]); hop0 = r.read(delays[:, :256])
    >>> r.feed(x[4096:]); r.end(); hop1 = r.read(delays[:, 256:512])

    Successive :meth:`read` calls advance an output cursor: the k-th call
    renders the next ``m`` output samples, where ``m`` is the last-axis
    length of its ``delay_samples`` block (leading axes render a batch of
    receivers, exactly as offline).  Concatenating every read reproduces
    the offline render of the fed signal **bit for bit** — asserted in
    ``tests/test_acoustics_delay_line.py`` — because interpolator tap
    positions are computed from *absolute* sample indices, never from
    block-relative ones, so block boundaries cannot introduce seams.

    An interpolator reads a little *ahead* of the nominal position (one tap
    for linear, more for Lagrange/sinc).  Mid-stream, a read that would
    need source samples not fed yet raises rather than silently rendering
    with a truncated kernel; after :meth:`end` declares the source
    exhausted, reads past it zero-extend exactly like the offline call.

    The fed signal is retained in full (delays may look arbitrarily far
    back), so memory matches the offline path's — the win of streaming is
    *latency*: each hop's render cost is paid when that hop is needed, not
    all up front at session start.
    """

    def __init__(
        self,
        *,
        interpolation: str = "lagrange",
        order: int = 3,
        sinc_half_width: int = 16,
    ) -> None:
        if interpolation not in INTERPOLATORS:
            raise ValueError(
                f"unknown interpolation {interpolation!r}; expected {INTERPOLATORS}"
            )
        if interpolation == "lagrange" and order < 1:
            raise ValueError("order must be >= 1")
        if interpolation == "sinc" and sinc_half_width < 2:
            raise ValueError("sinc_half_width must be >= 2")
        self.interpolation = interpolation
        self.order = int(order)
        self.sinc_half_width = int(sinc_half_width)
        # Samples the interpolator reads past floor(pos).
        if interpolation == "linear":
            self._lookahead = 1
        elif interpolation == "lagrange":
            self._lookahead = self.order - (self.order - 1) // 2
        else:
            self._lookahead = self.sinc_half_width
        self._buf = np.zeros(0)
        self._n_fed = 0
        self._n_read = 0
        self._ended = False

    @property
    def n_fed(self) -> int:
        """Source samples fed so far."""
        return self._n_fed

    @property
    def n_read(self) -> int:
        """Output samples rendered so far (the output cursor)."""
        return self._n_read

    @property
    def ended(self) -> bool:
        """Whether :meth:`end` declared the source exhausted."""
        return self._ended

    def feed(self, block: np.ndarray) -> None:
        """Append source samples (1-D) to the line."""
        if self._ended:
            raise RuntimeError("cannot feed after end()")
        block = np.asarray(block, dtype=np.float64)
        if block.ndim != 1:
            raise ValueError("block must be 1-D")
        n = block.size
        if self._n_fed + n > self._buf.size:
            grown = np.zeros(max(2 * self._buf.size, self._n_fed + n, 4096))
            grown[: self._n_fed] = self._buf[: self._n_fed]
            self._buf = grown
        self._buf[self._n_fed : self._n_fed + n] = block
        self._n_fed += n

    def end(self) -> None:
        """Declare the source exhausted: further reads zero-extend past it,
        exactly as the offline render treats samples outside the signal."""
        self._ended = True

    def read(self, delay_samples: np.ndarray) -> np.ndarray:
        """Render the next block of output samples.

        ``delay_samples`` has shape ``(m,)`` or ``(..., m)`` (a batch of
        receivers); output sample ``n_read + j`` is the fed signal read at
        absolute position ``(n_read + j) - delay_samples[..., j]``.  Raises
        when the interpolator would need source samples not fed yet (feed
        more, or call :meth:`end`).
        """
        delay = np.asarray(delay_samples, dtype=np.float64)
        if delay.ndim < 1 or delay.shape[-1] == 0:
            raise ValueError("delay_samples must have a non-empty last axis")
        if np.any(delay < 0):
            raise ValueError("delays must be non-negative")
        m = delay.shape[-1]
        pos = np.arange(self._n_read, self._n_read + m) - delay
        if not self._ended:
            needed = int(np.floor(pos.max())) + self._lookahead
            if needed >= self._n_fed:
                raise ValueError(
                    f"read needs source sample {needed}, only {self._n_fed} fed "
                    f"(feed more or call end())"
                )
        if self._n_fed == 0:
            # Nothing fed (ended empty, or every read position precedes the
            # signal): the zero extension is the whole answer.
            self._n_read += m
            return np.zeros(pos.shape)
        x = self._buf[: self._n_fed]
        if self.interpolation == "linear":
            out = _interp_linear(x, pos)
        elif self.interpolation == "lagrange":
            out = _interp_lagrange(x, pos, self.order)
        else:
            out = _interp_sinc(x, pos, self.sinc_half_width)
        self._n_read += m
        return out

    def reset(self) -> None:
        """Clear all state (fed samples, cursors, end flag)."""
        self._buf = np.zeros(0)
        self._n_fed = 0
        self._n_read = 0
        self._ended = False


class VariableDelayLine:
    """Streaming ring-buffer delay line with fractional (Lagrange) reads.

    Example
    -------
    >>> dl = VariableDelayLine(max_delay=1000)
    >>> out = [dl.process(xn, 44.25) for xn in signal]
    """

    def __init__(self, max_delay: float, *, order: int = 3) -> None:
        if max_delay <= 0:
            raise ValueError("max_delay must be positive")
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = int(order)
        self._size = int(np.ceil(max_delay)) + 2 * order + 4
        self._buf = np.zeros(self._size)
        self._n_written = 0
        self.max_delay = float(max_delay)

    def write(self, sample: float) -> None:
        """Push one input sample into the line."""
        self._buf[self._n_written % self._size] = sample
        self._n_written += 1

    def read(self, delay: float) -> float:
        """Read the line output at a fractional ``delay`` samples in the past.

        Reads that land before the first written sample (the wavefront has
        not arrived yet) return 0, matching :func:`render_varying_delay`.
        """
        if not 0.0 <= delay <= self.max_delay:
            raise ValueError(f"delay {delay} outside [0, {self.max_delay}]")
        pos = (self._n_written - 1) - delay
        floor_pos = int(np.floor(pos))
        frac = pos - floor_pos
        h = lagrange_fractional_delay(frac, self.order)
        idx = floor_pos - (self.order - 1) // 2 + np.arange(self.order + 1)
        valid = (idx >= 0) & (idx < self._n_written) & (idx > self._n_written - self._size)
        taps = np.where(valid, self._buf[idx % self._size], 0.0)
        return float(h @ taps)

    def process(self, sample: float, delay: float) -> float:
        """Write one sample, then read at ``delay`` — one tick of the line."""
        self.write(sample)
        return self.read(delay)

    def reset(self) -> None:
        """Clear the line state."""
        self._buf[:] = 0.0
        self._n_written = 0
