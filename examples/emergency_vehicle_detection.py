"""Emergency-sound detection: the Sec. IV-A dataset pipeline end-to-end.

    python examples/emergency_vehicle_detection.py

Generates a (scaled-down) version of the paper's 15 000-clip dataset with
the road-acoustics simulator, trains a small CNN on log-mel maps, and
reports accuracy overall and per SNR bin — the robustness curve the
automotive use case cares about (paper challenge 1: strong, dynamic
background noise down to -30 dB SNR).
"""

import numpy as np

from repro.sed import (
    DatasetConfig,
    SedCnnConfig,
    TrainConfig,
    accuracy,
    accuracy_vs_snr,
    build_sed_cnn,
    confusion_matrix,
    dataset_arrays,
    generate_dataset,
    predict,
    train_classifier,
)
from repro.sed.events import EVENT_CLASSES
from repro.sed.models import FeatureFrontEnd

FS = 8000.0
N_TRAIN, N_TEST = 200, 80

print(f"Generating {N_TRAIN + N_TEST} clips with pyroadacoustics-style simulation ...")
train_cfg = DatasetConfig(n_samples=N_TRAIN, duration=1.0, fs=FS, snr_range_db=(-15.0, 10.0))
test_cfg = DatasetConfig(n_samples=N_TEST, duration=1.0, fs=FS, snr_range_db=(-25.0, 5.0))
x_train, y_train, _ = dataset_arrays(generate_dataset(train_cfg, seed=0))
x_test, y_test, snr_test = dataset_arrays(generate_dataset(test_cfg, seed=1))

print("Extracting log-mel feature maps ...")
front_end = FeatureFrontEnd("log_mel", FS, n_frames=32, n_mels=32)
maps_train = front_end(x_train)
maps_test = front_end(x_test)

print("Training the detection CNN ...")
model = build_sed_cnn(SedCnnConfig(n_classes=5, base_channels=8, n_blocks=2))
history = train_classifier(
    model,
    maps_train,
    y_train,
    config=TrainConfig(epochs=20, batch_size=16, lr=2e-3, seed=0),
    x_val=maps_test,
    y_val=y_test,
    verbose=True,
)

pred = predict(model, maps_test)
print(f"\noverall test accuracy: {accuracy(y_test, pred):.3f} (chance = 0.20)")

print("\nconfusion matrix (rows = truth):")
cm = confusion_matrix(y_test, pred, len(EVENT_CLASSES))
header = " ".join(f"{c[:9]:>10}" for c in EVENT_CLASSES)
print(f"{'':>12}{header}")
for i, name in enumerate(EVENT_CLASSES):
    print(f"{name[:11]:>12}" + " ".join(f"{v:>10d}" for v in cm[i]))

print("\naccuracy vs SNR (event clips only):")
for lo, hi, acc, n in accuracy_vs_snr(y_test, pred, snr_test, bin_edges_db=np.arange(-25, 6, 10.0)):
    shown = f"{acc:.2f}" if n else "  - "
    print(f"  [{lo:+6.1f}, {hi:+6.1f}) dB : acc {shown}  (n={n})")
