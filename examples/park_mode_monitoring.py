"""Always-on park-mode monitoring (the paper's trigger-based low-power mode).

    python examples/park_mode_monitoring.py

Simulates a parked car through a quiet period with one passing emergency
vehicle, runs the trigger-gated pipeline, and prints the duty cycle plus
the average-power comparison on two device models (Sec. II requirement 3:
optimized energy in park mode).
"""

import numpy as np

from repro.core import (
    AcousticPerceptionPipeline,
    ParkModeController,
    PipelineConfig,
    mode_energy_report,
)
from repro.hw import CORTEX_M7, RASPI4
from repro.signals import synthesize_siren

FS = 16000.0
mics = np.array(
    [[0.1, 0.1, 1.0], [0.1, -0.1, 1.0], [-0.1, -0.1, 1.0], [-0.1, 0.1, 1.0]]
)
config = PipelineConfig(fs=FS, frame_length=512, hop_length=256, n_azimuth=24, n_elevation=2)
pipeline = AcousticPerceptionPipeline(mics, config)
park = ParkModeController(pipeline, wake_frames=20)

print("Simulating 10 s of a parked night with one siren pass at t = 5 s ...")
rng = np.random.default_rng(0)
n = int(10 * FS)
signals = 0.004 * rng.standard_normal((4, n))
siren = 0.7 * synthesize_siren("yelp", 1.5, FS)
start = int(5 * FS)
signals[:, start : start + siren.size] += siren

results = park.process_signal(signals)
awake = [i for i, r in enumerate(results) if r is not None]
detections = [r for r in results if r is not None and r.detected]

print(f"frames processed : {park.frames_total}")
print(f"frames awake     : {park.frames_awake}  (duty cycle {park.duty_cycle:.1%})")
if awake:
    first_wake_s = awake[0] * config.frame_period_s
    print(f"first wake-up    : t = {first_wake_s:.2f} s (event at 5.00 s)")
print(f"emergency frames : {len(detections)}")

print("\naverage power (device cost models):")
print(f"{'device':<12}{'drive W':>10}{'park W':>10}{'savings':>10}")
for device in (RASPI4, CORTEX_M7):
    report = mode_energy_report(pipeline, device, duty_cycle=park.duty_cycle)
    print(
        f"{device.name:<12}{report.drive_power_w:>10.3f}{report.park_power_w:>10.3f}"
        f"{report.savings_factor:>9.1f}x"
    )
print("\nPark mode holds the always-on requirement at a fraction of drive power.")
