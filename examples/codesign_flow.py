"""Hardware-algorithm co-design walk-through (the Fig. 4 workflow).

    python examples/codesign_flow.py

Starts from the full Cross3D configuration, runs the bottleneck analysis on
the RasPi-4B device model, then the greedy trade-off loop, and prints the
accepted moves, the final edge configuration and the deployment comparison
(the paper's "~86% smaller, ~47% faster" finetune).
"""

import numpy as np

from repro.hw import (
    CGRA_16x16,
    CgraFabric,
    DesignPoint,
    RASPI4,
    estimate_cost,
    lower_module,
    map_graph,
    roofline_report,
    run_codesign,
)
from repro.ssl import Cross3DNet

baseline = DesignPoint(base_channels=32, n_blocks=3, kernel_time=5)

print("=== Step 1: bottleneck analysis (roofline + cost model) ===")
net = Cross3DNet(baseline.to_config())
ir = lower_module(net, (1, 8, baseline.map_azimuth, baseline.map_elevation), name="cross3d")
report = estimate_cost(ir, RASPI4)
print(f"baseline: {net.n_parameters()} params, {report.latency_ms:.2f} ms per 8-frame sequence")
print("top-3 bottlenecks on raspi4b:")
for cost in report.bottleneck(3):
    print(f"  {cost.op_name:<28} {cost.kind:<10} {cost.latency_s * 1e3:7.3f} ms ({cost.bound}-bound)")

print("\nroofline placement (top 3 by time):")
for pt in roofline_report(ir, RASPI4)[:3]:
    print(
        f"  {pt.op_name:<28} AI {pt.arithmetic_intensity:7.2f} flop/B -> "
        f"{pt.attainable_gflops:5.1f} GFLOP/s attainable ({pt.bound}-bound)"
    )

print("\n=== Step 2-5: greedy trade-off loop ===")
result = run_codesign(baseline, device=RASPI4, error_budget_deg=2.0)
print(f"{'move':<16}{'latency ms':>12}{'error deg':>11}{'params':>9}{'bytes':>10}")
b = result.baseline
print(f"{'(baseline)':<16}{b.latency_ms:>12.3f}{b.error_deg:>11.2f}{b.n_params:>9}{b.model_bytes:>10.0f}")
for step in result.steps:
    e = step.evaluated
    print(f"{step.action:<16}{e.latency_ms:>12.3f}{e.error_deg:>11.2f}{e.n_params:>9}{e.model_bytes:>10.0f}")

print(
    f"\nresult: {result.speedup:.2f}x faster, {100 * result.size_reduction:.1f}% smaller "
    f"(paper: ~47% faster, ~86% smaller)"
)
print(f"final design point: {result.final.point}")

print("\n=== Step 6: retarget the winner to the CGRA fabric ===")
edge_net = Cross3DNet(result.final.point.to_config())
edge_ir = lower_module(
    edge_net, (1, 8, result.final.point.map_azimuth, result.final.point.map_elevation)
)
mapping = map_graph(edge_ir, CgraFabric(16, 16))
cpu = estimate_cost(edge_ir, RASPI4)
print(f"raspi4b cost model : {cpu.latency_ms:8.3f} ms")
print(
    f"cgra 16x16 mapping : {mapping.latency_s * 1e3:8.3f} ms "
    f"(utilization {mapping.utilization:.1%}, all ops mapped: {mapping.ok})"
)
