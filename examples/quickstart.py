"""Quickstart: simulate a siren drive-by and localize it.

Runs in a few seconds with no extra dependencies:

    python examples/quickstart.py

Covers the three core layers of the library: the road-acoustics simulator
(Doppler, spreading, asphalt reflection), the SRP-PHAT localizer, and the
DOA tracker.
"""

import numpy as np

from repro.acoustics import LinearTrajectory, MicrophoneArray, RoadAcousticsSimulator, Scene
from repro.signals import synthesize_siren
from repro.ssl import DoaGrid, FastSrpPhat, track_sequence

FS = 16000.0

# A compact 4-mic square array on the car roof (9 cm spacing keeps siren
# harmonics below the spatial-aliasing frequency).
mics = np.array(
    [[0.045, 0.045, 1.5], [0.045, -0.045, 1.5], [-0.045, -0.045, 1.5], [-0.045, 0.045, 1.5]]
)

# An ambulance with a 'wail' siren drives past, 25 m to the left.
trajectory = LinearTrajectory(start=[-60, 25, 1.0], end=[60, 25, 1.0], speed=22.0)
scene = Scene(trajectory, MicrophoneArray(mics), surface="dense_asphalt")
simulator = RoadAcousticsSimulator(scene, FS)

print("Synthesizing and propagating a 5 s wail siren ...")
siren = synthesize_siren("wail", duration=5.0, fs=FS)
received = simulator.simulate(siren)
print(f"received signals: {received.shape[0]} channels x {received.shape[1]} samples")

# Doppler check: the approaching siren is pitched up, the receding one down.
def dominant_freq(x):
    spec = np.abs(np.fft.rfft(x * np.hanning(x.size)))
    return np.fft.rfftfreq(x.size, 1 / FS)[np.argmax(spec)]

n = received.shape[1]
print(f"dominant frequency, first second : {dominant_freq(received[0, : int(FS)]):7.1f} Hz")
print(f"dominant frequency, last second  : {dominant_freq(received[0, -int(FS):]):7.1f} Hz")

# Localize frame by frame with the low-complexity SRP-PHAT.
grid = DoaGrid(n_azimuth=72, n_elevation=1, el_min=0.0, el_max=0.0)
localizer = FastSrpPhat(mics, FS, grid=grid, n_fft=2048)
frame, hop = 1024, 2048
azimuths = []
for start in range(int(FS), n - frame, hop):
    result = localizer.localize(received[:, start : start + frame])
    azimuths.append(result.azimuth)

# Smooth the raw estimates with the constant-velocity Kalman tracker.
states = track_sequence(np.asarray(azimuths), measurement_noise=0.15)

print("\n time s | raw azimuth deg | tracked azimuth deg")
for i in range(0, len(states), 6):
    t = (int(FS) + i * hop + frame / 2) / FS
    print(f" {t:6.2f} | {np.degrees(azimuths[i]):15.1f} | {np.degrees(states[i].azimuth):19.1f}")

print("\nThe azimuth sweeps from ahead-left to behind-left as the siren passes.")
