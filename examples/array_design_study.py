"""Microphone-array placement study (the Sec. V system-level challenge).

    python examples/array_design_study.py

Assesses candidate geometries — compact UCAs and the manufacturer-feasible
car placements — with the simulator-in-the-loop SRP-PHAT error sweep, and
relates the results to the geometric predictors (aperture, spatial-aliasing
frequency, DOA condition number).
"""

from repro.arrays import (
    AssessmentConfig,
    assess_geometry,
    car_corner_array,
    car_roof_array,
    uniform_circular_array,
    uniform_linear_array,
)

GEOMETRIES = {
    "uca4 r=5cm": uniform_circular_array(4, 0.05, center=(0, 0, 1.0)),
    "uca4 r=15cm": uniform_circular_array(4, 0.15, center=(0, 0, 1.0)),
    "uca8 r=15cm": uniform_circular_array(8, 0.15, center=(0, 0, 1.0)),
    "ula4 d=10cm": uniform_linear_array(4, 0.1),
    "car roof": car_roof_array(),
    "car corners": car_corner_array(),
}

for snr in (5.0, -10.0):
    cfg = AssessmentConfig(n_directions=12, seed=0, snr_db=snr)
    print(f"\n=== localization error sweep @ SNR {snr:+.0f} dB ===")
    print(f"{'geometry':<14}{'mean deg':>10}{'p90 deg':>10}{'aperture':>10}{'alias Hz':>10}{'cond':>8}")
    for name, positions in GEOMETRIES.items():
        res = assess_geometry(positions, cfg)
        cond = "inf" if res.condition_number == float("inf") else f"{res.condition_number:.1f}"
        print(
            f"{name:<14}{res.mean_error_deg:>10.1f}{res.p90_error_deg:>10.1f}"
            f"{res.aperture_m:>10.2f}{res.aliasing_hz:>10.0f}{cond:>8}"
        )

print(
    "\nReading the table: moderate apertures win at low SNR; the wide car\n"
    "placements spatially alias broadband noise (low alias Hz) and need SNR\n"
    "headroom; the collinear ULA shows its end-fire ambiguity in p90."
)
