"""Corridor fleet walkthrough: simulate -> shard -> fuse -> report.

    python examples/corridor_fleet.py

Builds a 3-node roadside corridor, drives two crossing emergency vehicles
through it with the road-acoustics simulator, shards the per-node batched
pipelines through the fleet scheduler, fuses the per-node bearing streams
into road-coordinate position tracks, and prints the corridor report —
the multi-node counterpart of examples/emergency_vehicle_detection.py.
"""

import numpy as np

from repro.acoustics.trajectory import LinearTrajectory
from repro.core import PipelineConfig
from repro.fleet import (
    CorridorScene,
    FleetScheduler,
    OracleDetector,
    Vehicle,
    fleet_report,
    format_report,
    fuse_fleet,
    localization_scorecard,
    place_corridor_nodes,
    synthesize_corridor,
)
from repro.signals import synthesize_siren

FS = 8000.0
DURATION = 3.0

print("Placing 3 array nodes, 25 m apart, along the road ...")
nodes = place_corridor_nodes(3, 25.0)
for node in nodes:
    print(f"  {node.node_id}: centre ({node.position[0]:+6.1f}, {node.position[1]:+4.1f}) m")

print("\nSynthesizing two crossing emergency vehicles ...")
rng = np.random.default_rng(0)
vehicles = [
    Vehicle(
        "siren_wail",
        LinearTrajectory([-35.0, 8.0, 0.8], [35.0, 8.0, 0.8], 15.0),
        synthesize_siren("wail", DURATION, FS, rng=rng),
    ),
    Vehicle(
        "siren_yelp",
        LinearTrajectory([35.0, 14.0, 0.8], [-35.0, 14.0, 0.8], 12.0),
        synthesize_siren("yelp", DURATION, FS, rng=rng),
    ),
]
recording = synthesize_corridor(CorridorScene(vehicles, nodes), FS)

print("Sharding per-node batched pipelines ...")
config = PipelineConfig(fs=FS, n_azimuth=72, n_elevation=2, localizer="srp_fast")
scheduler = FleetScheduler(nodes, config, detector=OracleDetector("siren_wail"))
run = scheduler.run(recording)
print(
    f"  shards {run.shards}, {scheduler.n_shared_localizers} nodes share steering tensors;"
    f" {run.fleet_latency.mean_s * 1e3:.1f} ms for {DURATION:.1f} s of corridor audio"
)

print("\nFusing cross-node tracks ...")
tracks = fuse_fleet(run.node_results, nodes, frame_period=config.frame_period_s)
report = fleet_report(tracks, run, frame_period=config.frame_period_s)
print(format_report(report))

n_frames = max(len(r) for r in run.node_results.values())
truth = recording.vehicle_positions(np.arange(n_frames) * config.frame_period_s)[:, :, :2]
fused_rms, single_rms = localization_scorecard(
    report.tracks, run.node_results, nodes, truth, road_line_y=11.0
)
print("\nLocalization scorecard (RMS error vs simulated ground truth):")
for v, rms in enumerate(fused_rms):
    print(f"  vehicle {v}: best fused track {rms:5.1f} m")
for node_id, rms in sorted(single_rms.items()):
    print(f"  {node_id} bearing-only: {rms:5.1f} m")
