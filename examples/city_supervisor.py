"""City supervisor walkthrough: many corridors, one shared worker pool.

    python examples/city_supervisor.py

Declares a three-corridor city scenario with a staggered join schedule and
one corridor that is asked to leave early, runs it through the
`CitySupervisor` — every session's shard hop-kernel work multiplexed onto
ONE shared pool of forked workers (falling back to in-process on platforms
without fork/shared-memory support) — and prints the live join/leave feed
followed by the city-wide health rollup.  The per-session fused tracks are
bit-identical to running each corridor standalone: sharing the pool is a
scheduling decision, never a numerics one.

The CLI equivalent of this script:

    python -m repro.cli city --corridors 3 --stagger 2 --workers 1
"""

from repro.city import (
    CityScenario,
    CitySupervisor,
    CorridorSpec,
    format_city_report,
)
from repro.stream import parallel_supported

print("Declaring the city: three corridors joining two steps apart ...")
scenario = CityScenario(
    corridors=(
        # Corridor 0 is live from the first supervisor step.
        CorridorSpec("riverside", n_nodes=3, duration_s=1.0),
        # Corridor 1 joins while riverside is already running.
        CorridorSpec("highstreet", n_nodes=2, duration_s=1.0, join_step=2),
        # Corridor 2 joins last and is yanked early (drain + leave) at
        # supervisor step 8 even though its capture is not exhausted.
        CorridorSpec("bypass", n_nodes=2, duration_s=1.5, join_step=4, leave_step=8),
    ),
    seed=7,
)
for spec in scenario.corridors:
    leaves = f", leaves at step {spec.leave_step}" if spec.leave_step else ""
    print(
        f"  {spec.corridor_id}: {spec.n_nodes} nodes, {spec.duration_s:.1f} s,"
        f" joins at step {spec.join_step}{leaves}"
    )

workers = 0 if parallel_supported() is not None else 1
mode = "in-process (fallback)" if workers == 0 else f"{workers} shared pool worker(s)"
print(f"\nRunning the supervisor loop [{mode}] ...")


def narrate(result):
    for cid in result.joined:
        print(f"  [step {result.step_index:>2}] {cid} joined ({result.n_live} live)")
    for cid in result.left:
        print(f"  [step {result.step_index:>2}] {cid} left   ({result.n_live} live)")


with CitySupervisor(scenario, workers=workers) as supervisor:
    report = supervisor.run(on_step=narrate)

print("\nCity-wide health rollup:")
print(format_city_report(report))

realtime = "yes" if report.realtime else "NO"
print(f"\ncity detect→update within budget: {realtime}")
