"""Component-anomaly monitoring (Fig. 1 use case ii).

    python examples/anomaly_monitoring.py

Fits a healthy-engine spectral template, then screens recordings with
synthetic faults (bearing clicks, belt whine, misfire) — the
"identifying anomalies in car components" use case the paper lists for the
always-on acoustic system.
"""

import numpy as np

from repro.sed import anomaly_scores, detect_anomaly, fit_template, synthesize_engine

FS = 16000.0

print("Recording healthy-engine audio across the idle rpm band (2300-2550) ...")
healthy = np.concatenate(
    [
        synthesize_engine(3.0, FS, rpm=rpm, rng=np.random.default_rng(i))
        for i, rpm in enumerate((2300.0, 2400.0, 2500.0, 2550.0))
    ]
)
template = fit_template(healthy, FS)
print(f"template: {template.n_mels} mel bands, threshold {template.threshold:.2f}")

cases = {
    "healthy (same rpm)": synthesize_engine(3.0, FS, rng=np.random.default_rng(1)),
    "healthy (2500 rpm)": synthesize_engine(3.0, FS, rpm=2500.0, rng=np.random.default_rng(2)),
    "bearing clicks": synthesize_engine(
        3.0, FS, defect="bearing", defect_level=0.8, rng=np.random.default_rng(3)
    ),
    "belt whine": synthesize_engine(
        3.0, FS, defect="whine", defect_level=0.6, rng=np.random.default_rng(4)
    ),
    "misfire": synthesize_engine(
        3.0, FS, defect="misfire", defect_level=0.9, rng=np.random.default_rng(5)
    ),
}

print(f"\n{'case':<22}{'mean score':>12}{'bad frames':>12}{'verdict':>12}")
for name, audio in cases.items():
    scores = anomaly_scores(audio, template)
    is_bad, fraction = detect_anomaly(audio, template)
    verdict = "ANOMALY" if is_bad else "ok"
    print(f"{name:<22}{scores.mean():>12.2f}{fraction:>11.1%}{verdict:>12}")

print(
    "\nThe template flags every planted fault while tolerating the small\n"
    "rpm drift — the behaviour an always-on park-mode monitor needs."
)
