"""Tests for wind noise, posterior calibration, and the energy DSE objective."""

import numpy as np
import pytest

from repro.acoustics import add_wind, wind_noise
from repro.hw import DesignPoint, evaluate_point, run_codesign
from repro.sed import apply_temperature, expected_calibration_error, fit_temperature


class TestWindNoise:
    def test_shape(self):
        w = wind_noise(3, 1.0, 8000.0, rng=np.random.default_rng(0))
        assert w.shape == (3, 8000)

    def test_low_frequency_dominated(self):
        w = wind_noise(1, 4.0, 8000.0, rng=np.random.default_rng(1))[0]
        spec = np.abs(np.fft.rfft(w)) ** 2
        freqs = np.fft.rfftfreq(w.size, 1 / 8000.0)
        low = spec[(freqs > 5) & (freqs < 100)].mean()
        high = spec[(freqs > 1000) & (freqs < 3000)].mean()
        assert low > 100 * high

    def test_incoherent_between_mics(self):
        # Capsule noise is phase-independent; the shared gust envelope makes
        # raw sample correlation meaningless (heavy-tailed effective DoF), so
        # measure Welch magnitude-squared coherence instead.
        w = wind_noise(2, 4.0, 8000.0, rng=np.random.default_rng(2))
        n_fft, hop, k = 256, 128, 16
        win = np.hanning(n_fft)
        s00 = s11 = 0.0
        s01 = 0j
        for start in range(0, w.shape[1] - n_fft, hop):
            f0 = np.fft.rfft(w[0, start : start + n_fft] * win)[k]
            f1 = np.fft.rfft(w[1, start : start + n_fft] * win)[k]
            s00 += abs(f0) ** 2
            s11 += abs(f1) ** 2
            s01 += f0 * np.conj(f1)
        coherence = abs(s01) ** 2 / (s00 * s11)
        assert coherence < 0.05

    def test_level_scales_with_speed(self):
        calm = wind_noise(1, 1.0, 8000.0, speed_mps=4.0, rng=np.random.default_rng(3))
        storm = wind_noise(1, 1.0, 8000.0, speed_mps=16.0, rng=np.random.default_rng(3))
        assert storm.std() > 10 * calm.std()

    def test_add_wind_relative_level(self):
        rng = np.random.default_rng(4)
        sig = rng.standard_normal((2, 8000))
        noisy = add_wind(sig, 8000.0, level_db=-20.0, rng=np.random.default_rng(5))
        added = noisy - sig
        ratio = np.sqrt(np.mean(added**2)) / np.sqrt(np.mean(sig**2))
        assert 20 * np.log10(ratio) == pytest.approx(-20.0, abs=0.5)

    def test_silent_signal_raises(self):
        with pytest.raises(ValueError, match="silent"):
            add_wind(np.zeros((2, 100)), 8000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            wind_noise(0, 1.0, 8000.0)
        with pytest.raises(ValueError):
            wind_noise(1, 1.0, 8000.0, gust_rate_hz=0.0)


class TestCalibration:
    def _synthetic_logits(self, n=400, k=4, scale=3.0, seed=0):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, k, n)
        logits = rng.standard_normal((n, k))
        logits[np.arange(n), labels] += 2.0
        return logits * scale, labels

    def test_ece_zero_for_perfectly_calibrated(self):
        # Deterministic correct predictions with confidence 1.0 -> ECE ~ 0.
        probs = np.eye(4)[np.array([0, 1, 2, 3] * 10)]
        labels = np.array([0, 1, 2, 3] * 10)
        assert expected_calibration_error(probs, labels) == pytest.approx(0.0, abs=1e-9)

    def test_overconfident_logits_have_high_ece(self):
        logits, labels = self._synthetic_logits(scale=6.0)
        ece_raw = expected_calibration_error(apply_temperature(logits, 1.0), labels)
        assert ece_raw > 0.05

    def test_temperature_improves_ece(self):
        logits, labels = self._synthetic_logits(scale=6.0)
        t = fit_temperature(logits, labels)
        ece_raw = expected_calibration_error(apply_temperature(logits, 1.0), labels)
        ece_cal = expected_calibration_error(apply_temperature(logits, t), labels)
        assert t > 1.0  # overconfident -> temperature above 1
        assert ece_cal < ece_raw

    def test_fitted_temperature_near_true_scale(self):
        # Logits scaled by 4 should calibrate back with T ~ 4.
        logits, labels = self._synthetic_logits(scale=1.0, seed=1)
        t = fit_temperature(logits * 4.0, labels)
        assert 2.0 < t < 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            apply_temperature(np.zeros((2, 3)), 0.0)
        with pytest.raises(ValueError):
            expected_calibration_error(np.zeros((2, 3)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            fit_temperature(np.zeros((2, 3)), np.array([0, 5]))


class TestEnergyObjective:
    def test_energy_objective_reduces_energy(self):
        base = DesignPoint(base_channels=16, n_blocks=2)
        res = run_codesign(base, objective="energy", sequence_length=4)
        assert res.final.energy_mj < res.baseline.energy_mj

    def test_objectives_may_disagree_on_path(self):
        base = DesignPoint(base_channels=16, n_blocks=2)
        lat = run_codesign(base, objective="latency", sequence_length=4)
        eng = run_codesign(base, objective="energy", sequence_length=4)
        # Both improve their own metric.
        assert lat.final.latency_ms <= lat.baseline.latency_ms
        assert eng.final.energy_mj <= eng.baseline.energy_mj

    def test_pruning_discounts_energy(self):
        dense = evaluate_point(DesignPoint(), sequence_length=4)
        pruned = evaluate_point(DesignPoint(prune_ratio=0.4), sequence_length=4)
        assert pruned.energy_mj < dense.energy_mj

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            run_codesign(objective="area")
