"""Tests for raw-waveform models, the U-net segmenter, and augmentation."""

import numpy as np
import pytest

from repro.nn import Adam, CrossEntropyLoss
from repro.sed import (
    DetectedEvent,
    MultiPathDetector,
    RawCnnConfig,
    activity_to_events,
    augment_batch,
    build_raw_mlp,
    build_raw_waveform_cnn,
    build_unet1d,
    event_based_scores,
    median_filter_mask,
    random_gain,
    remix_noise,
    spec_augment,
    time_shift,
)

RNG = np.random.default_rng(0)


class TestRawModels:
    def test_raw_cnn_shape(self):
        model = build_raw_waveform_cnn(RawCnnConfig(base_channels=4, n_blocks=2))
        out = model.forward(RNG.standard_normal((2, 1, 256)))
        assert out.shape == (2, 5)

    def test_raw_mlp_shape(self):
        model = build_raw_mlp(128, 3)
        assert model.forward(RNG.standard_normal((4, 128))).shape == (4, 3)

    def test_raw_cnn_learns_tone_vs_noise(self):
        fs, n = 2000, 256
        t = np.arange(n) / fs
        x = np.zeros((40, 1, n))
        y = np.zeros(40, dtype=np.int64)
        for i in range(40):
            if i % 2 == 0:
                x[i, 0] = np.sin(2 * np.pi * 300 * t) + 0.1 * RNG.standard_normal(n)
            else:
                x[i, 0] = RNG.standard_normal(n)
                y[i] = 1
        model = build_raw_waveform_cnn(
            RawCnnConfig(n_classes=2, base_channels=4, n_blocks=2),
            rng=np.random.default_rng(1),
        )
        loss_fn = CrossEntropyLoss()
        opt = Adam(model.parameters(), lr=5e-3)
        model.train()
        for _ in range(30):
            logits = model.forward(x)
            loss_fn.forward(logits, y)
            opt.zero_grad()
            model.backward(loss_fn.backward())
            opt.step()
        model.eval()
        acc = float(np.mean(np.argmax(model.forward(x), axis=1) == y))
        assert acc >= 0.9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RawCnnConfig(first_kernel=10)
        with pytest.raises(ValueError):
            build_raw_mlp(4, 2)


class TestMultiPath:
    def test_forward_shape(self):
        model = MultiPathDetector(n_classes=4, raw_channels=4, tf_channels=4)
        raw = RNG.standard_normal((3, 1, 128))
        tf = RNG.standard_normal((3, 1, 8, 8))
        assert model.forward((raw, tf)).shape == (3, 4)

    def test_backward_returns_both_grads(self):
        model = MultiPathDetector(n_classes=3, raw_channels=2, tf_channels=2)
        raw = RNG.standard_normal((2, 1, 64))
        tf = RNG.standard_normal((2, 1, 4, 4))
        out = model.forward((raw, tf))
        g_raw, g_tf = model.backward(np.ones_like(out))
        assert g_raw.shape == raw.shape
        assert g_tf.shape == tf.shape

    def test_trains_jointly(self):
        rng = np.random.default_rng(2)
        n = 24
        raw = rng.standard_normal((n, 1, 64))
        tf = rng.standard_normal((n, 1, 4, 4))
        y = np.zeros(n, dtype=np.int64)
        # Make class depend on the tf branch only.
        y[: n // 2] = 1
        tf[: n // 2] += 2.0
        model = MultiPathDetector(n_classes=2, raw_channels=2, tf_channels=4)
        loss_fn = CrossEntropyLoss()
        opt = Adam(model.parameters(), lr=5e-3)
        model.train()
        for _ in range(40):
            logits = model.forward((raw, tf))
            loss_fn.forward(logits, y)
            opt.zero_grad()
            model.backward(loss_fn.backward())
            opt.step()
        model.eval()
        acc = float(np.mean(np.argmax(model.forward((raw, tf)), axis=1) == y))
        assert acc >= 0.9

    def test_validation(self):
        model = MultiPathDetector()
        with pytest.raises(ValueError):
            model.forward((RNG.standard_normal((2, 2, 64)), RNG.standard_normal((2, 1, 4, 4))))


class TestUnetSegmentation:
    def test_unet_shape(self):
        model = build_unet1d(8, depth=2, base_channels=4)
        out = model.forward(RNG.standard_normal((2, 8, 16)))
        assert out.shape == (2, 1, 16)

    def test_unet_gradients(self):
        from tests.test_nn_layers import check_gradients

        model = build_unet1d(4, depth=1, base_channels=3)
        check_gradients(model, RNG.standard_normal((2, 4, 8)))

    def test_unet_learns_activity(self):
        # Frames with high channel-0 energy are 'active'.
        rng = np.random.default_rng(3)
        n, f, t = 16, 4, 16
        x = rng.standard_normal((n, f, t)) * 0.1
        target = np.zeros((n, 1, t))
        for i in range(n):
            start = int(rng.integers(0, t - 6))
            x[i, 0, start : start + 6] += 2.0
            target[i, 0, start : start + 6] = 1.0
        model = build_unet1d(f, depth=1, base_channels=4)
        from repro.nn import BCEWithLogitsLoss

        loss_fn = BCEWithLogitsLoss()
        opt = Adam(model.parameters(), lr=5e-3)
        model.train()
        for _ in range(60):
            logits = model.forward(x)
            loss_fn.forward(logits, target)
            opt.zero_grad()
            model.backward(loss_fn.backward())
            opt.step()
        model.eval()
        probs = 1 / (1 + np.exp(-model.forward(x)))
        acc = float(np.mean((probs > 0.5) == (target > 0.5)))
        assert acc >= 0.85


class TestPostProcessing:
    def test_median_filter_removes_spikes(self):
        act = np.array([0, 0, 1, 0, 0, 1, 1, 1, 1, 0, 0])
        mask = median_filter_mask(act, width=3)
        assert not mask[2]  # isolated spike removed
        assert mask[6]

    def test_activity_to_events_extracts_blocks(self):
        act = np.zeros(40)
        act[5:15] = 0.9
        act[25:35] = 0.8
        events = activity_to_events(act, median_width=3, min_duration=3)
        assert len(events) == 2
        assert events[0].onset_frame == pytest.approx(5, abs=1)
        assert events[1].duration_frames >= 8

    def test_min_duration_prunes(self):
        act = np.zeros(20)
        act[3:5] = 1.0
        assert activity_to_events(act, median_width=1, min_duration=5) == []

    def test_trailing_event_closed(self):
        act = np.zeros(20)
        act[14:] = 1.0
        events = activity_to_events(act, median_width=1, min_duration=3)
        assert len(events) == 1
        assert events[-1].offset_frame == 20

    def test_event_scores_perfect(self):
        ref = [DetectedEvent(5, 10), DetectedEvent(20, 30)]
        scores = event_based_scores(ref, ref)
        assert scores["f1"] == 1.0

    def test_event_scores_tolerance(self):
        ref = [DetectedEvent(5, 10)]
        est = [DetectedEvent(8, 12)]
        assert event_based_scores(ref, est, onset_tolerance=5)["f1"] == 1.0
        assert event_based_scores(ref, est, onset_tolerance=1)["f1"] == 0.0

    def test_event_scores_counts(self):
        ref = [DetectedEvent(5, 10), DetectedEvent(30, 35)]
        est = [DetectedEvent(5, 9)]
        s = event_based_scores(ref, est)
        assert s["tp"] == 1 and s["fn"] == 1 and s["fp"] == 0

    def test_event_validation(self):
        with pytest.raises(ValueError):
            DetectedEvent(5, 5)


class TestAugmentation:
    def test_time_shift_preserves_content(self):
        x = RNG.standard_normal(100)
        y = time_shift(x, 0.3, np.random.default_rng(0))
        assert sorted(x.round(9)) == sorted(y.round(9))

    def test_random_gain_bounds(self):
        x = np.ones(10)
        y = random_gain(x, np.random.default_rng(1), low_db=-6, high_db=6)
        g = np.abs(y[0])
        assert 10 ** (-6 / 20) <= g <= 10 ** (6 / 20)

    def test_remix_noise_snr_in_range(self):
        from repro.dsp.levels import snr_db

        sig = np.sin(np.linspace(0, 40, 1000))
        noise = RNG.standard_normal(1000)
        mixed = remix_noise(sig, noise, np.random.default_rng(2), snr_range_db=(-10, -10))
        # With a pinned range the SNR is exact.
        assert snr_db(sig, mixed - sig) == pytest.approx(-10.0, abs=1e-6)

    def test_spec_augment_masks(self):
        feats = np.ones((16, 20))
        out = spec_augment(feats, np.random.default_rng(3), mask_value=0.0)
        assert out.min() == 0.0
        assert np.all(feats == 1.0)  # input untouched

    def test_augment_batch_shapes(self):
        batch = RNG.standard_normal((4, 200))
        noise_bank = [RNG.standard_normal(200)]
        out = augment_batch(batch, noise_bank, np.random.default_rng(4))
        assert out.shape == batch.shape

    def test_validation(self):
        with pytest.raises(ValueError):
            time_shift(np.ones(10), 0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            spec_augment(np.ones(5), np.random.default_rng(0))
