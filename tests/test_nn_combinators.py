"""Tests for the module combinators (Parallel, Add, Residual, Upsample1d)."""

import numpy as np
import pytest

from repro.nn import (
    Add,
    Conv1d,
    Dense,
    Parallel,
    ReLU,
    Residual,
    Sequential,
    Upsample1d,
)
from tests.test_nn_layers import check_gradients

RNG = np.random.default_rng(11)


class TestParallel:
    def test_concatenates_channels(self):
        p = Parallel(Dense(4, 3), Dense(4, 5))
        out = p.forward(RNG.standard_normal((2, 4)))
        assert out.shape == (2, 8)

    def test_gradients(self):
        model = Sequential(Parallel(Dense(4, 3), Sequential(Dense(4, 2), ReLU())), Dense(5, 2))
        check_gradients(model, RNG.standard_normal((3, 4)))

    def test_conv_branches(self):
        p = Parallel(Conv1d(2, 3, 3, padding=1), Conv1d(2, 5, 1))
        out = p.forward(RNG.standard_normal((2, 2, 8)))
        assert out.shape == (2, 8, 8)

    def test_shape_mismatch_raises(self):
        p = Parallel(Conv1d(2, 3, 3), Conv1d(2, 3, 5))  # different output lengths
        with pytest.raises(ValueError, match="disagree"):
            p.forward(RNG.standard_normal((1, 2, 8)))

    def test_needs_two_branches(self):
        with pytest.raises(ValueError):
            Parallel(Dense(2, 2))

    def test_train_propagates(self):
        from repro.nn import Dropout

        p = Parallel(Sequential(Dropout(0.5)), Sequential(Dropout(0.5)))
        p.eval()
        assert not p.branches[0].layers[0].training


class TestAdd:
    def test_sums_outputs(self):
        a = Dense(3, 3)
        b = Dense(3, 3)
        add = Add(a, b)
        x = RNG.standard_normal((2, 3))
        assert np.allclose(add.forward(x), a.forward(x) + b.forward(x))

    def test_gradients(self):
        model = Sequential(Add(Dense(4, 4), Sequential(Dense(4, 4), ReLU())), Dense(4, 2))
        check_gradients(model, RNG.standard_normal((2, 4)))

    def test_mismatch_raises(self):
        add = Add(Dense(3, 3), Dense(3, 4))
        with pytest.raises(ValueError):
            add.forward(RNG.standard_normal((2, 3)))


class TestResidual:
    def test_identity_plus_branch(self):
        inner = Dense(4, 4)
        res = Residual(inner)
        x = RNG.standard_normal((2, 4))
        assert np.allclose(res.forward(x), x + inner.forward(x))

    def test_gradients(self):
        model = Sequential(Residual(Sequential(Dense(4, 4), ReLU())), Dense(4, 2))
        check_gradients(model, RNG.standard_normal((2, 4)))

    def test_shape_change_raises(self):
        res = Residual(Dense(4, 5))
        with pytest.raises(ValueError, match="changed shape"):
            res.forward(RNG.standard_normal((2, 4)))


class TestUpsample1d:
    def test_repeats_samples(self):
        up = Upsample1d(2)
        x = np.array([[[1.0, 2.0]]])
        assert np.allclose(up.forward(x), [[[1.0, 1.0, 2.0, 2.0]]])

    def test_backward_sums(self):
        up = Upsample1d(2)
        up.forward(np.ones((1, 1, 2)))
        g = up.backward(np.array([[[1.0, 2.0, 3.0, 4.0]]]))
        assert np.allclose(g, [[[3.0, 7.0]]])

    def test_gradients(self):
        model = Sequential(Conv1d(1, 2, 3, padding=1), Upsample1d(2))
        check_gradients(model, RNG.standard_normal((2, 1, 4)))

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            Upsample1d(1)
