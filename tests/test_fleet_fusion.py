"""Fusion edge cases: collinear node geometry, single-node bearing-only
survival, detection gaps (coast + re-association), per-class fusion
thresholds, and the wide-baseline multilateration upgrade."""

import numpy as np
import pytest

from repro.acoustics.environment import MicrophoneArray
from repro.acoustics.trajectory import StaticPosition
from repro.core import PipelineConfig
from repro.core.pipeline import FrameResult
from repro.fleet import (
    CorridorNode,
    CorridorScene,
    FleetScheduler,
    FusionConfig,
    OracleDetector,
    Vehicle,
    collect_detections,
    fuse_fleet,
    place_corridor_nodes,
    synthesize_corridor,
    triangulate_bearings,
)
from repro.signals import synthesize_siren

FRAME_PERIOD = 0.032


def make_node(node_id, x, y):
    layout = np.array(
        [[0.1, 0.1, 1.0], [0.1, -0.1, 1.0], [-0.1, -0.1, 1.0], [-0.1, 0.1, 1.0]]
    )
    return CorridorNode(node_id, MicrophoneArray(layout + np.array([x, y, 0.0])))


def results_from_bearings(bearings, *, label="siren_wail", confidence=0.9):
    """Per-node FrameResult stream from a frame -> azimuth map (nan = miss)."""
    out = []
    for frame, az in enumerate(bearings):
        detected = np.isfinite(az)
        out.append(
            FrameResult(
                frame,
                label if detected else "background",
                confidence if detected else 0.9,
                bool(detected),
                float(az) if detected else float("nan"),
                0.0,
            )
        )
    return out


def bearings_to_target(node, path_xy):
    """Exact bearings from a node to a per-frame target path ``(n, 2)``."""
    o = node.position[:2]
    return [float(np.arctan2(p[1] - o[1], p[0] - o[0])) for p in path_xy]


class TestTriangulateBearings:
    def test_exact_intersection(self):
        origins = np.array([[0.0, 0.0], [20.0, 0.0]])
        target = np.array([8.0, 12.0])
        bearings = np.arctan2(target[1] - origins[:, 1], target[0] - origins[:, 0])
        xy = triangulate_bearings(origins, bearings)
        assert np.allclose(xy, target, atol=1e-9)

    def test_parallel_rays_rejected(self):
        origins = np.array([[0.0, 0.0], [20.0, 0.0]])
        assert triangulate_bearings(origins, np.array([0.0, 0.0])) is None

    def test_behind_ray_rejected(self):
        origins = np.array([[0.0, 0.0], [20.0, 0.0]])
        # Rays pointing away from each other never intersect ahead.
        assert triangulate_bearings(origins, np.array([np.pi, 0.0])) is None


class TestCollinearGeometry:
    def test_target_on_node_axis_degrades_to_bearing_only(self):
        # Three collinear nodes staring down their own baseline: every
        # bearing is (near) 0 or pi, triangulation is singular, and fusion
        # must fall back to a surviving bearing-only track — not crash or
        # emit a garbage position.
        nodes = [make_node("a", -20.0, 0.0), make_node("b", 0.0, 0.0), make_node("c", 20.0, 0.0)]
        n_frames = 20
        node_results = {
            n.node_id: results_from_bearings([0.0] * n_frames) for n in nodes
        }
        tracks = fuse_fleet(node_results, nodes, frame_period=FRAME_PERIOD)
        confirmed = [t for t in tracks if t.confirmed]
        assert confirmed, "bearing-only track must survive collinear geometry"
        for t in confirmed:
            assert t.n_triangulated == 0 and t.n_multilaterated == 0
            assert t.bearing_only
            pos = t.positions()
            assert np.all(np.isfinite(pos))
            # The track stays on the shared +x ray (small |y|).
            assert np.all(np.abs(pos[:, 1]) < 5.0)


class TestSingleNodeCoverage:
    def test_vehicle_seen_by_one_node_survives(self):
        nodes = [make_node("near", 0.0, 0.0), make_node("far", 500.0, 0.0)]
        # Target drives by the near node only; the far node never detects.
        path = np.stack([np.linspace(-20, 20, 40), np.full(40, 10.0)], axis=1)
        node_results = {
            "near": results_from_bearings(bearings_to_target(nodes[0], path)),
            "far": results_from_bearings([float("nan")] * 40),
        }
        tracks = fuse_fleet(node_results, nodes, frame_period=FRAME_PERIOD)
        confirmed = [t for t in tracks if t.confirmed]
        assert len(confirmed) == 1
        track = confirmed[0]
        assert track.bearing_only
        assert track.nodes == {"near"}
        assert track.hits >= 35
        # Bearing-only EKF keeps the azimuth right even though range is
        # unobservable: check the tracked bearing matches the truth.
        frames = track.frames()
        pos = track.positions()
        truth_bearing = np.arctan2(path[frames, 1], path[frames, 0])
        est_bearing = np.arctan2(pos[:, 1], pos[:, 0])
        err = np.degrees(np.abs(np.angle(np.exp(1j * (est_bearing - truth_bearing)))))
        assert np.median(err) < 10.0


class TestDetectionGaps:
    def test_coast_and_reassociation_keeps_one_track(self):
        nodes = [make_node("a", -15.0, 0.0), make_node("b", 15.0, 0.0)]
        n_frames = 60
        path = np.stack(
            [np.linspace(-25, 25, n_frames), np.full(n_frames, 12.0)], axis=1
        )
        gap = range(25, 33)  # both nodes drop out mid-track
        streams = {}
        for node in nodes:
            bearings = bearings_to_target(node, path)
            for g in gap:
                bearings[g] = float("nan")
            streams[node.node_id] = results_from_bearings(bearings)
        config = FusionConfig(coast_frames=12)
        tracks = fuse_fleet(streams, nodes, frame_period=FRAME_PERIOD, config=config)
        confirmed = [t for t in tracks if t.confirmed]
        assert len(confirmed) == 1, "gap must re-associate, not fork a second track"
        track = confirmed[0]
        frames = track.frames()
        assert frames[0] <= 5 and frames[-1] >= n_frames - 2
        # The coasted gap frames are covered by predictions.
        assert set(gap).issubset(set(frames.tolist()))
        err = np.linalg.norm(track.positions() - path[frames], axis=1)
        assert np.median(err) < 4.0

    def test_gap_longer_than_coast_forks_a_new_track(self):
        nodes = [make_node("a", -15.0, 0.0), make_node("b", 15.0, 0.0)]
        n_frames = 70
        path = np.stack(
            [np.linspace(-25, 25, n_frames), np.full(n_frames, 12.0)], axis=1
        )
        gap = range(25, 50)  # far beyond the coast budget
        streams = {}
        for node in nodes:
            bearings = bearings_to_target(node, path)
            for g in gap:
                bearings[g] = float("nan")
            streams[node.node_id] = results_from_bearings(bearings)
        config = FusionConfig(coast_frames=5)
        tracks = fuse_fleet(streams, nodes, frame_period=FRAME_PERIOD, config=config)
        confirmed = [t for t in tracks if t.confirmed]
        assert len(confirmed) == 2


class TestTrackLifecycle:
    def test_newborn_track_keeps_full_miss_budget(self):
        # A track spawned on its birth frame must not be charged a miss for
        # that same frame: with tentative_coast_frames=1 it survives exactly
        # one genuinely missed frame, then dies on the second.
        nodes = [make_node("a", 0.0, 0.0)]
        streams = {"a": results_from_bearings([0.5, float("nan"), 0.5, float("nan"), float("nan"), float("nan")])}
        config = FusionConfig(min_hits=2, tentative_coast_frames=1)
        tracks = fuse_fleet(streams, nodes, frame_period=FRAME_PERIOD, config=config)
        assert len(tracks) == 1  # frame 2 re-associates to the survivor
        assert tracks[0].hits == 2

    def test_min_hits_one_has_no_duplicate_history(self):
        nodes = [make_node("a", 0.0, 0.0)]
        streams = {"a": results_from_bearings([0.5, 0.5, 0.5])}
        config = FusionConfig(min_hits=1)
        tracks = fuse_fleet(streams, nodes, frame_period=FRAME_PERIOD, config=config)
        assert len(tracks) == 1
        frames = tracks[0].frames()
        assert len(frames) == len(set(frames.tolist()))


class TestPerClassThresholds:
    def test_horn_needs_higher_confidence_than_siren(self):
        nodes = [make_node("a", 0.0, 0.0)]
        frames = {
            "a": [
                FrameResult(0, "horn", 0.60, True, 0.3, 0.0),
                FrameResult(1, "siren_wail", 0.60, True, 0.3, 0.0),
                FrameResult(2, "horn", 0.80, True, 0.3, 0.0),
                FrameResult(3, "background", 0.99, False, float("nan"), 0.0),
            ]
        }
        dets = collect_detections(frames, nodes)
        flat = [d for group in dets.values() for d in group]
        labels = sorted((d.frame_index, d.label) for d in flat)
        # horn@0.60 is below its 0.65 floor; siren_wail@0.60 clears 0.50;
        # horn@0.80 clears; background never fuses.
        assert labels == [(1, "siren_wail"), (2, "horn")]

    def test_override_thresholds(self):
        nodes = [make_node("a", 0.0, 0.0)]
        frames = {"a": [FrameResult(0, "horn", 0.60, True, 0.3, 0.0)]}
        config = FusionConfig(class_thresholds={"horn": 0.5})
        dets = collect_detections(frames, nodes, config=config)
        assert len(dets[0]) == 1


class TestMultilaterationUpgrade:
    def test_static_source_gets_tdoa_position_fixes(self):
        fs = 8000.0
        nodes = place_corridor_nodes(2, 25.0)
        rng = np.random.default_rng(1)
        scene = CorridorScene(
            [
                Vehicle(
                    "siren_wail",
                    StaticPosition([4.0, 10.0, 0.8]),
                    synthesize_siren("wail", 1.0, fs, rng=rng),
                )
            ],
            nodes,
        )
        rec = synthesize_corridor(scene, fs)
        config = PipelineConfig(fs=fs, n_azimuth=72, n_elevation=2)
        run = FleetScheduler(nodes, config, detector=OracleDetector("siren_wail")).run(rec)
        tracks = fuse_fleet(
            run.node_results,
            nodes,
            frame_period=config.frame_period_s,
            recordings=rec.recordings,
            fs=fs,
            hop_length=config.hop_length,
        )
        confirmed = [t for t in tracks if t.confirmed]
        assert len(confirmed) == 1
        track = confirmed[0]
        assert track.n_multilaterated > 0, "wide-baseline TDOA upgrade never fired"
        assert not track.bearing_only
        mean = track.positions().mean(axis=0)
        assert np.hypot(mean[0] - 4.0, mean[1] - 10.0) < 3.0

    def test_requires_fs_with_recordings(self):
        nodes = [make_node("a", 0.0, 0.0)]
        with pytest.raises(ValueError, match="fs is required"):
            fuse_fleet({"a": []}, nodes, frame_period=0.032, recordings={"a": np.zeros((4, 10))})
