"""Tests for repro.acoustics.geometry (Fig. 3 reflection geometry)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustics.geometry import (
    direct_distance,
    image_source,
    incidence_angle,
    propagation_delay,
    reflected_distance,
    reflection_point,
)

positive = st.floats(min_value=0.1, max_value=50.0)
coord = st.floats(min_value=-50.0, max_value=50.0)


class TestImageSource:
    def test_mirror(self):
        assert np.allclose(image_source(np.array([1.0, 2.0, 3.0])), [1.0, 2.0, -3.0])

    def test_batch(self):
        src = np.array([[0, 0, 1.0], [1, 1, 2.0]])
        img = image_source(src)
        assert np.allclose(img[:, 2], [-1.0, -2.0])

    def test_involution(self):
        src = np.array([3.0, -2.0, 5.0])
        assert np.allclose(image_source(image_source(src)), src)


class TestDistances:
    def test_direct(self):
        d = direct_distance(np.array([3.0, 4.0, 1.0]), np.array([0.0, 0.0, 1.0]))
        assert d == pytest.approx(5.0)

    def test_reflected_longer_than_direct(self):
        src = np.array([10.0, 0.0, 2.0])
        mic = np.array([0.0, 0.0, 1.0])
        assert reflected_distance(src, mic) > direct_distance(src, mic)

    @settings(max_examples=30, deadline=None)
    @given(coord, coord, positive, coord, coord, positive)
    def test_reflected_equals_image_distance(self, sx, sy, sz, mx, my, mz):
        src = np.array([sx, sy, sz])
        mic = np.array([mx, my, mz])
        d_img = np.linalg.norm(np.array([sx, sy, -sz]) - mic)
        assert reflected_distance(src, mic) == pytest.approx(d_img)


class TestReflectionPoint:
    def test_on_road_plane(self):
        p = reflection_point(np.array([10.0, 5.0, 2.0]), np.array([0.0, 0.0, 1.0]))
        assert p[2] == 0.0

    def test_symmetric_case_midpoint(self):
        p = reflection_point(np.array([10.0, 0.0, 1.0]), np.array([0.0, 0.0, 1.0]))
        assert p[0] == pytest.approx(5.0)

    @settings(max_examples=30, deadline=None)
    @given(coord, coord, positive, coord, coord, positive)
    def test_snell_equal_path_segments(self, sx, sy, sz, mx, my, mz):
        # d(source -> P) + d(P -> mic) must equal the image-source distance.
        src = np.array([sx, sy, sz])
        mic = np.array([mx, my, mz])
        p = reflection_point(src, mic)
        total = np.linalg.norm(src - p) + np.linalg.norm(mic - p)
        assert total == pytest.approx(reflected_distance(src, mic), rel=1e-9)

    def test_source_on_plane_raises(self):
        with pytest.raises(ValueError, match="strictly above"):
            reflection_point(np.array([1.0, 0.0, 0.0]), np.array([0.0, 0.0, 1.0]))


class TestIncidenceAngle:
    def test_vertical_reflection(self):
        # Source directly above mic position on the plane -> normal incidence
        # when both are stacked: use symmetric small offset instead.
        ang = incidence_angle(np.array([0.01, 0.0, 1.0]), np.array([-0.01, 0.0, 1.0]))
        assert ang < 0.1

    def test_grazing_approaches_pi_over_2(self):
        ang = incidence_angle(np.array([100.0, 0.0, 0.5]), np.array([0.0, 0.0, 0.5]))
        assert ang > 1.5

    def test_45_degrees(self):
        ang = incidence_angle(np.array([2.0, 0.0, 1.0]), np.array([0.0, 0.0, 1.0]))
        assert ang == pytest.approx(np.pi / 4, abs=1e-9)


class TestPropagationDelay:
    def test_scaling(self):
        assert propagation_delay(343.0) == pytest.approx(1.0)

    def test_custom_speed(self):
        assert propagation_delay(100.0, c=200.0) == pytest.approx(0.5)

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            propagation_delay(1.0, c=0.0)
