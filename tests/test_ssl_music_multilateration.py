"""Tests for MUSIC DOA and TDOA multilateration."""

import numpy as np
import pytest

from repro.acoustics import MicrophoneArray, RoadAcousticsSimulator, Scene, StaticPosition
from repro.signals import white_noise
from repro.ssl import (
    DoaGrid,
    MusicDoa,
    angular_error_deg,
    azel_to_unit,
    localize_position,
    multilaterate,
    music_spectrum,
    pair_tdoas,
    spatial_covariance,
    tdoa_vector,
)

FS = 16000.0
MICS = np.array(
    [[0.08, 0.08, 1.0], [0.08, -0.08, 1.0], [-0.08, -0.08, 1.0], [-0.08, 0.08, 1.0]]
)


def simulate(src, mics=MICS, seed=0, duration=0.4):
    scene = Scene(StaticPosition(src), MicrophoneArray(mics), surface=None)
    sim = RoadAcousticsSimulator(scene, FS, air_absorption=False, interpolation="linear")
    sig = white_noise(duration, FS, rng=np.random.default_rng(seed))
    return sim.simulate(sig)


class TestSpatialCovariance:
    def test_hermitian(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((5, 4, 16)) + 1j * rng.standard_normal((5, 4, 16))
        r = spatial_covariance(x)
        assert r.shape == (16, 4, 4)
        assert np.allclose(r, np.conj(np.transpose(r, (0, 2, 1))))

    def test_psd(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((10, 3, 8)) + 1j * rng.standard_normal((10, 3, 8))
        r = spatial_covariance(x)
        for k in range(8):
            w = np.linalg.eigvalsh(r[k])
            assert np.all(w > -1e-10)


class TestMusicSpectrum:
    def test_peaks_at_planted_direction(self):
        m = 4
        rng = np.random.default_rng(2)
        a_true = np.exp(1j * rng.uniform(0, 2 * np.pi, m))
        # Covariance = signal + small noise.
        r = 5.0 * np.outer(a_true, np.conj(a_true)) + 0.1 * np.eye(m)
        steering = np.stack([a_true, np.exp(1j * rng.uniform(0, 2 * np.pi, m))])
        spec = music_spectrum(r, steering, 1)
        assert spec[0] > 10 * spec[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            music_spectrum(np.eye(3), np.ones((2, 3)), 3)


class TestMusicDoa:
    def test_localizes_broadband_source(self):
        grid = DoaGrid(n_azimuth=72, n_elevation=1, el_min=0.0, el_max=0.0)
        music = MusicDoa(MICS, FS, grid=grid, n_fft=512, band_hz=(300.0, 1800.0))
        for az_true in (-1.8, 0.4, 2.3):
            src = 25.0 * azel_to_unit(az_true, 0.0) + np.array([0, 0, 1.0])
            frames = simulate(src, seed=int(az_true * 10) % 5)[:, 2000:6096]
            res = music.localize(frames)
            err = angular_error_deg(azel_to_unit(res.azimuth, 0.0), azel_to_unit(az_true, 0.0))
            assert err < 12.0

    def test_needs_three_mics(self):
        with pytest.raises(ValueError):
            MusicDoa(MICS[:2], FS)

    def test_frame_too_short_raises(self):
        music = MusicDoa(MICS, FS, n_fft=512)
        with pytest.raises(ValueError):
            music.map_from_frames(np.zeros((4, 64)))

    def test_band_validation(self):
        with pytest.raises(ValueError):
            MusicDoa(MICS, FS, band_hz=(5000.0, 1000.0))


WIDE = np.array(
    [
        [2.0, 1.0, 0.6],
        [2.0, -1.0, 0.6],
        [-2.0, -1.0, 0.6],
        [-2.0, 1.0, 0.6],
        [0.0, 1.2, 1.1],
        [0.0, -1.2, 1.1],
    ]
)


class TestMultilateration:
    def test_exact_tdoas_recover_position(self):
        src = np.array([8.0, 5.0, 1.0])
        d = np.linalg.norm(WIDE - src, axis=1)
        from repro.ssl.srp import mic_pairs

        taus = np.array([(d[i] - d[j]) / 343.0 for i, j in mic_pairs(WIDE.shape[0])])
        fix = multilaterate(WIDE, taus, c=343.0, z_fixed=1.0)
        assert np.linalg.norm(fix.position[:2] - src[:2]) < 0.1
        assert fix.residual_s < 1e-9

    def test_measured_tdoas_recover_position(self):
        src = np.array([10.0, -6.0, 1.0])
        received = simulate(src, mics=WIDE, seed=3)
        frames = received[:, 2000:4048]
        fix = localize_position(frames, WIDE, FS, z_fixed=1.0)
        # Range error grows with distance; a few metres at 11.7 m is fine.
        assert np.linalg.norm(fix.position[:2] - src[:2]) < 3.0

    def test_distance_estimate(self):
        src = np.array([6.0, 4.0, 1.0])
        received = simulate(src, mics=WIDE, seed=4)
        fix = localize_position(received[:, 2000:4048], WIDE, FS, z_fixed=1.0)
        true_range = np.linalg.norm(src - WIDE.mean(axis=0))
        assert fix.distance == pytest.approx(true_range, rel=0.4)

    def test_needs_four_mics(self):
        with pytest.raises(ValueError):
            multilaterate(WIDE[:3], np.zeros(3))

    def test_tdoa_vector_shape(self):
        frames = np.random.default_rng(0).standard_normal((4, 512))
        taus = tdoa_vector(frames, FS)
        assert taus.shape == (6,)
