"""Tests for SRP-PHAT: baseline, fast variant, and their equivalence."""

import numpy as np
import pytest

from repro.acoustics import MicrophoneArray, RoadAcousticsSimulator, Scene, StaticPosition
from repro.signals import white_noise
from repro.ssl import (
    DoaGrid,
    FastSrpPhat,
    SrpPhat,
    angular_error_deg,
    azel_to_unit,
    gcc_phat_spectra,
    gcc_phat_spectrum,
    mic_pairs,
    pair_tdoas,
)

FS = 16000
MICS = np.array(
    [[0.1, 0.1, 1.0], [0.1, -0.1, 1.0], [-0.1, -0.1, 1.0], [-0.1, 0.1, 1.0]]
)
GRID = DoaGrid(n_azimuth=48, n_elevation=4, el_min=0.0, el_max=np.pi / 6)


def simulate_from(azimuth, elevation=0.05, distance=25.0, seed=0):
    direction = azel_to_unit(azimuth, elevation)
    src = distance * direction + np.array([0.0, 0.0, 1.0])
    scene = Scene(StaticPosition(src), MicrophoneArray(MICS), surface=None)
    sim = RoadAcousticsSimulator(scene, FS, air_absorption=False, interpolation="linear")
    sig = white_noise(0.3, FS, rng=np.random.default_rng(seed))
    out = sim.simulate(sig)
    return out[:, 3000:3512]


class TestMicPairs:
    def test_count(self):
        assert len(mic_pairs(4)) == 6
        assert len(mic_pairs(6)) == 15

    def test_needs_two(self):
        with pytest.raises(ValueError):
            mic_pairs(1)

    def test_tdoa_shape_and_antisymmetry(self):
        dirs = DoaGrid(n_azimuth=8, n_elevation=1).directions()
        tdoas = pair_tdoas(MICS, dirs)
        assert tdoas.shape == (6, 8)
        # Opposite directions flip the TDOA sign.
        tdoas_flip = pair_tdoas(MICS, -dirs)
        assert np.allclose(tdoas, -tdoas_flip)

    def test_tdoa_bounded_by_aperture(self):
        dirs = DoaGrid().directions()
        tdoas = pair_tdoas(MICS, dirs)
        max_sep = 0.2 * np.sqrt(2)
        assert np.abs(tdoas).max() <= max_sep / 343.0 + 1e-9


@pytest.mark.parametrize("cls", [SrpPhat, FastSrpPhat])
class TestLocalization:
    def test_finds_source_azimuth(self, cls):
        loc = cls(MICS, FS, grid=GRID, n_fft=1024)
        for az_true in (-2.0, 0.0, 1.2, 2.8):
            frames = simulate_from(az_true, seed=int(az_true * 10) % 7)
            res = loc.localize(frames)
            err = angular_error_deg(
                azel_to_unit(res.azimuth, 0.0), azel_to_unit(az_true, 0.0)
            )
            assert err < 12.0  # within ~1.5 grid cells

    def test_map_shape(self, cls):
        loc = cls(MICS, FS, grid=GRID, n_fft=1024)
        res = loc.localize(simulate_from(0.5))
        assert res.map.shape == GRID.shape

    def test_frame_validation(self, cls):
        loc = cls(MICS, FS, grid=GRID, n_fft=1024)
        with pytest.raises(ValueError):
            loc.map_from_frames(np.ones((3, 512)))
        with pytest.raises(ValueError):
            loc.map_from_frames(np.ones((4, 2048)))

    def test_construction_validation(self, cls):
        with pytest.raises(ValueError):
            cls(MICS, 0.0)
        with pytest.raises(ValueError):
            cls(MICS[:1], FS)
        with pytest.raises(ValueError):
            cls(MICS, FS, n_fft=100)


class TestGccPhatSpectra:
    def test_matches_pairwise_api(self):
        rng = np.random.default_rng(0)
        frames = rng.standard_normal((4, 256))
        spectra = gcc_phat_spectra(frames, n_fft=1024)
        for p, (i, j) in enumerate(mic_pairs(4)):
            ref = gcc_phat_spectrum(frames[i], frames[j], n_fft=1024)
            assert np.allclose(spectra[p], ref)

    def test_batched_matches_per_frame(self):
        rng = np.random.default_rng(1)
        frames = rng.standard_normal((5, 4, 256))
        batched = gcc_phat_spectra(frames, n_fft=1024)
        for t in range(5):
            assert np.allclose(batched[t], gcc_phat_spectra(frames[t], n_fft=1024))

    def test_default_nfft_doubles_frame(self):
        frames = np.random.default_rng(2).standard_normal((2, 100))
        assert gcc_phat_spectra(frames).shape == (1, 101)  # rfft bins of n=200

    def test_custom_pairs(self):
        frames = np.random.default_rng(3).standard_normal((4, 128))
        sub = gcc_phat_spectra(frames, pairs=[(0, 3)])
        assert sub.shape == (1, 129)
        assert np.allclose(sub[0], gcc_phat_spectrum(frames[0], frames[3]))

    def test_validation(self):
        with pytest.raises(ValueError):
            gcc_phat_spectra(np.ones(16))  # 1-D
        with pytest.raises(ValueError):
            gcc_phat_spectra(np.ones((1, 16)))  # one mic


@pytest.mark.parametrize("cls", [SrpPhat, FastSrpPhat])
class TestBatchedMaps:
    def test_batch_matches_loop(self, cls):
        loc = cls(MICS, FS, grid=GRID, n_fft=1024)
        rng = np.random.default_rng(4)
        frames = rng.standard_normal((6, 4, 512))
        loop = np.stack([loc.map_from_frames(f) for f in frames])
        batch = loc.map_from_frames_batch(frames)
        assert batch.shape == (6, *GRID.shape)
        assert np.allclose(loop, batch)

    def test_localize_batch_matches_localize(self, cls):
        loc = cls(MICS, FS, grid=GRID, n_fft=1024)
        frames = np.stack([simulate_from(az, seed=s) for s, az in enumerate((-2.0, 0.3, 1.7))])
        singles = [loc.localize(f) for f in frames]
        batch = loc.localize_batch(frames)
        for r1, r2 in zip(singles, batch):
            assert r1.azimuth == r2.azimuth
            assert r1.elevation == r2.elevation
            assert np.allclose(r1.map, r2.map)
            assert np.allclose(r1.direction, r2.direction)

    def test_batch_validation(self, cls):
        loc = cls(MICS, FS, grid=GRID, n_fft=1024)
        with pytest.raises(ValueError):
            loc.map_from_frames_batch(np.ones((4, 512)))  # missing frame axis
        with pytest.raises(ValueError):
            loc.map_from_frames_batch(np.ones((2, 3, 512)))  # wrong mic count
        with pytest.raises(ValueError):
            loc.map_from_frames_batch(np.ones((2, 4, 2048)))  # frame too long


class TestMusicBatch:
    def test_batch_matches_loop(self):
        from repro.ssl import MusicDoa

        grid = DoaGrid(n_azimuth=24, n_elevation=2)
        music = MusicDoa(MICS, FS, grid=grid, n_fft=512)
        rng = np.random.default_rng(5)
        frames = rng.standard_normal((4, 4, 512))
        loop = np.stack([music.map_from_frames(f) for f in frames])
        batch = music.map_from_frames_batch(frames)
        assert np.allclose(loop, batch)
        singles = [music.localize(f) for f in frames]
        for r1, r2 in zip(singles, music.localize_batch(frames)):
            assert r1.azimuth == r2.azimuth and r1.elevation == r2.elevation

    def test_batch_validation(self):
        from repro.ssl import MusicDoa

        music = MusicDoa(MICS, FS, grid=DoaGrid(n_azimuth=24, n_elevation=2), n_fft=512)
        with pytest.raises(ValueError):
            music.map_from_frames_batch(np.ones((2, 3, 512)))
        with pytest.raises(ValueError):
            music.map_from_frames_batch(np.ones((2, 4, 64)))  # too short to snapshot


class TestEquivalence:
    def test_maps_strongly_correlated(self):
        base = SrpPhat(MICS, FS, grid=GRID, n_fft=1024)
        fast = FastSrpPhat(MICS, FS, grid=GRID, n_fft=1024)
        for seed in range(3):
            frames = simulate_from(0.8 + seed, seed=seed)
            m1 = base.map_from_frames(frames)
            m2 = fast.map_from_frames(frames)
            r = np.corrcoef(m1.ravel(), m2.ravel())[0, 1]
            assert r > 0.98

    def test_same_peak_direction(self):
        base = SrpPhat(MICS, FS, grid=GRID, n_fft=1024)
        fast = FastSrpPhat(MICS, FS, grid=GRID, n_fft=1024)
        frames = simulate_from(-1.3, seed=4)
        r1, r2 = base.localize(frames), fast.localize(frames)
        err = angular_error_deg(r1.direction, r2.direction)
        assert err < 10.0

    def test_fast_needs_fewer_coefficients(self):
        base = SrpPhat(MICS, FS, grid=GRID, n_fft=1024)
        fast = FastSrpPhat(MICS, FS, grid=GRID, n_fft=1024)
        # The paper reports ~50% coefficient reduction; the decimated GCC
        # representation beats that comfortably.
        assert fast.n_coefficients < 0.5 * base.n_coefficients

    def test_more_taps_closer_to_exact(self):
        base = SrpPhat(MICS, FS, grid=GRID, n_fft=1024)
        frames = simulate_from(0.4, seed=2)
        m_exact = base.map_from_frames(frames)
        errs = []
        for taps in (2, 8):
            fast = FastSrpPhat(MICS, FS, grid=GRID, n_fft=1024, n_interp_taps=taps)
            m = fast.map_from_frames(frames)
            # Compare standardized maps (scales differ by definition).
            a = (m_exact - m_exact.mean()) / m_exact.std()
            b = (m - m.mean()) / m.std()
            errs.append(float(np.abs(a - b).max()))
        assert errs[1] < errs[0]

    def test_aperture_vs_nfft_guard(self):
        wide = np.array([[50.0, 0, 1.0], [-50.0, 0, 1.0]])
        with pytest.raises(ValueError, match="aperture"):
            FastSrpPhat(wide, FS, n_fft=64)
