"""City supervisor tests: shared pool, lifecycle, determinism, rollups.

The contract under test, in layers:

- :class:`ShardWorkerPool` serves shard runners of *many* sessions on one
  set of forked workers (register/step/release), survives worker death for
  registered sessions (checkpoint + :meth:`recover`), and refuses to
  silently lose preloaded ones;
- :class:`SharedCapacity` arithmetic and the :class:`Pacer`'s fair-share
  budget scaling against it;
- scenario declaration and **seed hygiene**: every corridor renders
  distinct traffic from one root seed, bit-reproducibly;
- the :class:`CitySupervisor` lifecycle (join/leave schedule, one-step
  draining, degradation when the pool is absent or saturated) and the
  headline determinism contract: every session of a concurrent city run
  produces fused tracks **bit-identical** to the same corridor standalone
  — in-process and on a shared pool, even across a worker crash;
- the :func:`city_report` rollup layer and its JSON projection.
"""

import os
import signal

import numpy as np
import pytest

from repro.city import (
    CityScenario,
    CitySupervisor,
    CorridorSpec,
    SessionManager,
    city_report_json,
    corridor_rngs,
    default_scenario,
    format_city_report,
    load_scenario,
    render_corridor,
)
from repro.core import PipelineConfig
from repro.fleet import CorridorStream, FleetScheduler, OracleDetector
from repro.stream import (
    Pacer,
    ParallelFleetStream,
    SharedCapacity,
    ShardWorkerPool,
    WorkerCrashed,
    parallel_supported,
)

needs_processes = pytest.mark.skipif(
    parallel_supported() is not None,
    reason=f"process runtime unavailable: {parallel_supported()}",
)


class CountingRunner:
    """Minimal pool-compatible runner: step counts, state round-trips."""

    def __init__(self, key):
        self.key = key
        self.count = 0

    def step(self):
        self.count += 1
        return (self.key, self.count)

    def state_dict(self):
        return {"count": self.count}

    def load_state_dict(self, state):
        self.count = int(state["count"])


class ExplodingRunner:
    """Raises inside the worker; the traceback must cross the pipe."""

    def step(self):
        raise RuntimeError("kaboom in the worker")

    def state_dict(self):
        return {}

    def load_state_dict(self, state):
        pass


# --------------------------------------------------------------------------
# ShardWorkerPool
# --------------------------------------------------------------------------


@needs_processes
class TestShardWorkerPool:
    def test_register_step_release(self):
        with ShardWorkerPool(1) as pool:
            pool.register("a", {0: CountingRunner(0), 1: CountingRunner(1)})
            assert pool.sessions() == ["a"]
            assert pool.load == 2
            assert pool.step("a") == {0: (0, 1), 1: (1, 1)}
            assert pool.step("a") == {0: (0, 2), 1: (1, 2)}
            pool.release("a")
            assert pool.load == 0
            assert pool.sessions() == []
            pool.release("a")  # idempotent

    def test_two_sessions_interleave_on_one_worker(self):
        """Send both sessions' steps before collecting either — replies
        arriving out of collect order are stashed per session."""
        with ShardWorkerPool(1) as pool:
            pool.register("a", {0: CountingRunner(0)})
            pool.register("b", {0: CountingRunner(0)})
            pool.step_send("a")
            pool.step_send("b")
            # Collect b first: a's reply (queued first) must be stashed.
            assert pool.step_collect("b") == {0: (0, 1)}
            assert pool.step_collect("a") == {0: (0, 1)}

    def test_duplicate_session_rejected(self):
        with ShardWorkerPool(1) as pool:
            pool.register("a", {0: CountingRunner(0)})
            with pytest.raises(ValueError, match="already registered"):
                pool.register("a", {0: CountingRunner(0)})

    def test_saturation_is_advisory(self):
        with ShardWorkerPool(1, max_shards_per_worker=1) as pool:
            assert not pool.saturated()
            pool.register("a", {0: CountingRunner(0)})
            assert pool.saturated()
            pool.release("a")
            assert not pool.saturated()

    def test_kill_recover_continues_from_checkpoint(self):
        """A SIGKILLed worker respawns; registered runners resume from
        their last completed step, and the lost step is re-run."""
        with ShardWorkerPool(1) as pool:
            pool.register("a", {0: CountingRunner(0)})
            assert pool.step("a") == {0: (0, 1)}
            proc = pool._procs[0]
            os.kill(proc.pid, signal.SIGKILL)
            proc.join()
            with pytest.raises(WorkerCrashed) as excinfo:
                pool.step("a")
            assert "a/shard0" in str(excinfo.value)
            assert pool.recover() == 1
            # The in-flight step was re-queued on the replacement worker:
            # collecting yields the continuation, not a restart from zero.
            assert pool.step_collect("a") == {0: (0, 2)}
            assert pool.step("a") == {0: (0, 3)}

    def test_preloaded_shards_are_not_recoverable(self):
        pool = ShardWorkerPool(1, preload={("a", 0): CountingRunner(0)})
        try:
            assert pool.step("a") == {0: (0, 1)}
            proc = pool._procs[0]
            os.kill(proc.pid, signal.SIGKILL)
            proc.join()
            with pytest.raises(WorkerCrashed):
                pool.step("a")
            # No registration payload to replay: recovery must refuse
            # rather than silently restart the shard from scratch.
            with pytest.raises(WorkerCrashed, match="a/shard0"):
                pool.recover()
        finally:
            pool.close()

    def test_worker_exception_propagates_with_traceback(self):
        with ShardWorkerPool(1) as pool:
            pool.register("a", {0: ExplodingRunner()})
            with pytest.raises(RuntimeError, match="kaboom in the worker"):
                pool.step("a")

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ShardWorkerPool(0)
        with pytest.raises(ValueError, match="max_shards_per_worker"):
            ShardWorkerPool(1, max_shards_per_worker=0)


# --------------------------------------------------------------------------
# SharedCapacity and fair-share pacing
# --------------------------------------------------------------------------


class TestSharedCapacity:
    def test_oversubscription_arithmetic(self):
        cap = SharedCapacity(2)
        assert cap.oversubscription() == 1.0  # idle pool counts as fair
        cap.acquire(2)
        assert cap.oversubscription() == 1.0  # fully but fairly loaded
        cap.acquire(4)
        assert cap.oversubscription() == 3.0  # 6 shards on 2 slots
        cap.release(4)
        cap.release(2)
        assert cap.held == 0
        cap.release(5)  # clamps at zero, never negative
        assert cap.held == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedCapacity(0)

    def test_pacer_scales_budget_by_oversubscription(self):
        """On a 3x oversubscribed pool a shard gets 1/3 of real time: a
        wall time inside the raw budget but outside the fair share must
        count as an overrun, and the recorded budget must be the share."""
        cap = SharedCapacity(1)
        cap.acquire(3)
        paced = Pacer(0.032, hop_batch=8, capacity=cap)
        raw_budget = 8 * 0.032
        paced.observe(0.6 * raw_budget, 8)  # inside raw, outside raw/3
        assert paced.stats().n_overruns == 1
        assert paced.stats().records[0][1] == pytest.approx(raw_budget / 3)
        # The same wall time on an uncontended pool is not an overrun.
        free = Pacer(0.032, hop_batch=8, capacity=SharedCapacity(1))
        free.observe(0.6 * raw_budget, 8)
        assert free.stats().n_overruns == 0


# --------------------------------------------------------------------------
# Scenarios and seed hygiene
# --------------------------------------------------------------------------


class TestScenario:
    def test_validation(self):
        with pytest.raises(ValueError, match="corridor_id"):
            CorridorSpec("")
        with pytest.raises(ValueError, match="leave_step"):
            CorridorSpec("a", join_step=4, leave_step=4)
        with pytest.raises(ValueError, match="unique"):
            CityScenario((CorridorSpec("a"), CorridorSpec("a")))
        with pytest.raises(ValueError, match="at least one"):
            CityScenario(())
        with pytest.raises(ValueError, match="hop_batch"):
            CityScenario((CorridorSpec("a"),), hop_batch=0)

    def test_corridor_rngs_distinct_and_reproducible(self):
        scn = default_scenario(3, seed=42)
        rngs = corridor_rngs(scn)
        draws = {cid: rng.standard_normal(8) for cid, rng in rngs.items()}
        ids = list(draws)
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                assert not np.allclose(draws[a], draws[b]), (
                    f"{a} and {b} derived identical streams"
                )
        again = {cid: rng.standard_normal(8) for cid, rng in corridor_rngs(scn).items()}
        for cid in ids:
            assert np.array_equal(draws[cid], again[cid])

    def test_rendered_corridors_differ_but_reproduce(self):
        """Seed hygiene end to end: distinct traffic per corridor, yet the
        whole city replays bit-identically from the root seed."""
        scn = default_scenario(2, duration_s=0.3, n_nodes=2, seed=5)
        rngs = corridor_rngs(scn)
        recs = {
            spec.corridor_id: render_corridor(spec, scn, rngs[spec.corridor_id])
            for spec in scn.corridors
        }
        first = {cid: rec.recordings[rec.scene.nodes[0].node_id] for cid, rec in recs.items()}
        assert not np.array_equal(first["corridor0"], first["corridor1"])
        rngs2 = corridor_rngs(scn)
        rec0 = render_corridor(scn.corridors[0], scn, rngs2["corridor0"])
        assert np.array_equal(
            first["corridor0"], rec0.recordings[rec0.scene.nodes[0].node_id]
        )

    def test_load_scenario_round_trip_and_typo_rejection(self, tmp_path):
        path = tmp_path / "city.json"
        path.write_text(
            '{"seed": 3, "hop_batch": 4, "corridors": ['
            '{"corridor_id": "north", "n_nodes": 2, "duration_s": 0.5},'
            '{"corridor_id": "south", "join_step": 8, "leave_step": 40}]}'
        )
        scn = load_scenario(str(path))
        assert scn.seed == 3 and scn.hop_batch == 4
        assert [c.corridor_id for c in scn.corridors] == ["north", "south"]
        assert scn.corridors[1].leave_step == 40
        path.write_text('{"corridors": [{"corridor_id": "x", "n_node": 2}]}')
        with pytest.raises(ValueError, match="n_node"):
            load_scenario(str(path))
        path.write_text('{"sead": 3, "corridors": [{"corridor_id": "x"}]}')
        with pytest.raises(ValueError, match="sead"):
            load_scenario(str(path))


# --------------------------------------------------------------------------
# Supervisor lifecycle and determinism
# --------------------------------------------------------------------------


def standalone_result(spec, scenario):
    """The reference: the corridor run standalone, in-process (workers=0)."""
    rngs = corridor_rngs(scenario)
    recording = render_corridor(spec, scenario, rngs[spec.corridor_id])
    config = PipelineConfig(
        fs=scenario.fs,
        localizer=scenario.localizer,
        n_azimuth=scenario.n_azimuth,
        n_elevation=scenario.n_elevation,
    )
    sched = FleetScheduler(
        recording.scene.nodes,
        config,
        detector=OracleDetector("siren_wail"),
        n_shards=spec.n_shards,
    )
    feed = CorridorStream(
        recording,
        chunk_samples=sched.config.hop_length,
        drop_prob=spec.drop_prob,
        rng=rngs[spec.corridor_id],
    )
    with ParallelFleetStream(
        sched, feed.sources(), hop_batch=scenario.hop_batch, workers=0
    ) as session:
        result = session.run()
    sched.close()
    return result


def track_signature(tracks):
    """Bit-exact identity signature of a fused track list."""
    return [
        (t.track_id, t.label, t.hits, t.confirmed, tuple(t.history), tuple(sorted(t.nodes)))
        for t in tracks
    ]


@pytest.fixture(scope="module")
def city_scenario():
    return default_scenario(3, duration_s=0.4, n_nodes=2, seed=9, stagger_steps=1)


@pytest.fixture(scope="module")
def standalone_signatures(city_scenario):
    return {
        spec.corridor_id: track_signature(standalone_result(spec, city_scenario).tracks)
        for spec in city_scenario.corridors
    }


class TestCitySupervisor:
    def test_join_leave_lifecycle(self, city_scenario):
        events = []
        with CitySupervisor(city_scenario, workers=0) as sup:
            report = sup.run(on_step=lambda r: events.append(r))
        joined = {cid: r.step_index for r in events for cid in r.joined}
        left = {cid: r.step_index for r in events for cid in r.left}
        # Staggered joins: corridor k joins at step k.
        assert joined == {"corridor0": 0, "corridor1": 1, "corridor2": 2}
        # Every session left, exactly once, after at least one live step
        # plus the one-step draining window.
        assert set(left) == set(joined)
        for cid in joined:
            assert left[cid] >= joined[cid] + 2
        assert report.n_left == 3 and report.n_live == 0

    def test_sessions_record_join_and_left_steps(self, city_scenario):
        with CitySupervisor(city_scenario, workers=0) as sup:
            sup.run()
            for spec in city_scenario.corridors:
                session = sup.manager.sessions[spec.corridor_id]
                assert session.state == "left"
                assert session.joined_step == spec.join_step
                assert session.left_step > session.joined_step
                assert session.result is not None

    def test_leave_step_cuts_a_session_short(self):
        cut = CorridorSpec(
            "corridor0", n_nodes=2, duration_s=0.8, join_step=0, leave_step=1
        )
        full = CorridorSpec("corridor1", n_nodes=2, duration_s=0.8)
        scn = CityScenario(corridors=(cut, full), seed=9)
        with CitySupervisor(scn, workers=0) as sup:
            sup.run()
            short = sup.manager.sessions["corridor0"]
            long = sup.manager.sessions["corridor1"]
            assert short.state == "left" and long.state == "left"
            assert short.left_step < long.left_step
            assert len(short.result.updates) < len(long.result.updates)

    def test_workers0_everyone_degraded(self, city_scenario):
        with CitySupervisor(city_scenario, workers=0) as sup:
            report = sup.run()
        assert report.n_degraded == 3
        assert report.pool_workers == 0

    def test_in_process_city_matches_standalone(
        self, city_scenario, standalone_signatures
    ):
        """Headline contract, portable flavour: concurrent supervised
        sessions (workers=0) are bit-identical to standalone runs."""
        with CitySupervisor(city_scenario, workers=0) as sup:
            sup.run()
            for cid, want in standalone_signatures.items():
                got = track_signature(sup.manager.sessions[cid].result.tracks)
                assert got == want, f"{cid} diverged from its standalone run"

    def test_incremental_full_physics_city_matches_replay(self):
        """Sessions that render chunk-by-chunk at ingest (full physics on)
        fuse the same tracks as whole-render replay sessions, per seed."""

        def scn(incremental):
            specs = tuple(
                CorridorSpec(
                    f"corridor{k}",
                    n_nodes=2,
                    duration_s=0.4,
                    surface="dense_asphalt",
                    air_absorption=True,
                    incremental=incremental,
                )
                for k in range(2)
            )
            return CityScenario(corridors=specs, seed=9)

        def run(incremental):
            with CitySupervisor(scn(incremental), workers=0) as sup:
                sup.run()
                return {
                    cid: track_signature(s.result.tracks)
                    for cid, s in sup.manager.sessions.items()
                }

        replay, incremental = run(False), run(True)
        assert replay == incremental
        assert any(len(sig) > 0 for sig in replay.values())

    @needs_processes
    def test_shared_pool_city_matches_standalone(
        self, city_scenario, standalone_signatures
    ):
        """Headline contract: >= 3 concurrent sessions multiplexed on one
        shared worker pool, bit-identical per-session fused tracks."""
        with CitySupervisor(city_scenario, workers=1) as sup:
            report = sup.run()
            assert report.n_degraded == 0  # everyone actually used the pool
            for cid, want in standalone_signatures.items():
                got = track_signature(sup.manager.sessions[cid].result.tracks)
                assert got == want, f"{cid} diverged on the shared pool"

    @needs_processes
    def test_worker_crash_recovers_and_stays_deterministic(
        self, city_scenario, standalone_signatures
    ):
        """SIGKILL a pool worker mid-run: the supervisor respawns it,
        restores every session from checkpoints, re-runs the lost step —
        and the final tracks are still bit-identical."""
        killed = []

        with CitySupervisor(city_scenario, workers=1) as sup:
            def on_step(result):
                if result.step_index == 1 and not killed:
                    proc = sup.manager.pool._procs[0]
                    os.kill(proc.pid, signal.SIGKILL)
                    proc.join()
                    killed.append(proc.pid)

            report = sup.run(on_step=on_step)
            assert killed, "kill hook never fired"
            assert report.n_worker_restarts >= 1
            for cid, want in standalone_signatures.items():
                got = track_signature(sup.manager.sessions[cid].result.tracks)
                assert got == want, f"{cid} diverged after worker crash"

    @needs_processes
    def test_saturated_pool_degrades_later_joiners(self, city_scenario):
        """Admission control: once the pool carries max_shards_per_worker
        per worker, later sessions run in-process instead of queueing."""
        with CitySupervisor(
            city_scenario, workers=1, max_shards_per_worker=1
        ) as sup:
            report = sup.run()
        assert report.n_degraded >= 1  # later joiners pushed in-process
        assert report.n_degraded < report.n_sessions  # first one got the pool
        assert report.n_left == 3

    def test_manager_rejects_duplicate_submission(self, city_scenario):
        with SessionManager(workers=0) as manager:
            rngs = corridor_rngs(city_scenario)
            spec = city_scenario.corridors[0]
            manager.submit(spec, city_scenario, rngs[spec.corridor_id])
            with pytest.raises(ValueError, match="already submitted"):
                manager.submit(spec, city_scenario, rngs[spec.corridor_id])


# --------------------------------------------------------------------------
# City report rollups
# --------------------------------------------------------------------------


class TestCityReport:
    @pytest.fixture(scope="class")
    def finished(self, city_scenario):
        with CitySupervisor(city_scenario, workers=0) as sup:
            report = sup.run()
        return report

    def test_rollup_counters(self, finished):
        assert finished.n_sessions == 3
        assert finished.n_left == 3 and finished.n_live == 0
        assert len(finished.corridors) == 3
        for row in finished.corridors:
            assert row.state == "left"
            assert row.n_tracks > 0 and row.n_updates > 0
            assert row.n_nodes == 2
            assert row.d2u_deadline_ms > 0
        d2u = finished.detect_to_update
        assert d2u.max_s >= d2u.p95_s >= d2u.mean_s > 0

    def test_format_and_json(self, finished):
        text = format_city_report(finished)
        assert "city sessions" in text and "detect→update" in text
        for row in finished.corridors:
            assert row.corridor_id in text
        doc = city_report_json(finished)
        import json

        json.dumps(doc)  # must be plain-type serializable
        assert doc["n_sessions"] == 3
        assert {c["corridor_id"] for c in doc["corridors"]} == {
            "corridor0", "corridor1", "corridor2"
        }
        for c in doc["corridors"]:
            assert set(c) >= {
                "state", "degraded", "d2u_p95_ms", "n_overruns",
                "n_overrun_alerts", "peak_hop_batch", "realtime",
            }

    def test_report_mid_run_includes_pending_sessions(self):
        scn = default_scenario(2, duration_s=0.4, n_nodes=2, seed=9, stagger_steps=50)
        with CitySupervisor(scn, workers=0) as sup:
            sup.step()  # corridor0 joins; corridor1 still submitted
            report = sup.report()
            states = {r.corridor_id: r.state for r in report.corridors}
            assert states["corridor0"] == "live"
            assert states["corridor1"] == "submitted"
            assert report.n_live == 1
