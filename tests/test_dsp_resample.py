"""Tests for repro.dsp.resample."""

import numpy as np
import pytest

from repro.dsp.resample import resample, time_axis


class TestResample:
    def test_identity(self):
        x = np.random.default_rng(0).standard_normal(100)
        assert np.allclose(resample(x, 8000, 8000), x)

    def test_doubling_length(self):
        x = np.zeros(1000)
        assert resample(x, 8000, 16000).size == 2000

    def test_preserves_tone_frequency(self):
        fs_in, fs_out, f0 = 8000, 16000, 440.0
        t = np.arange(fs_in) / fs_in
        x = np.sin(2 * np.pi * f0 * t)
        y = resample(x, fs_in, fs_out)
        spec = np.abs(np.fft.rfft(y * np.hanning(y.size)))
        freqs = np.fft.rfftfreq(y.size, 1 / fs_out)
        assert abs(freqs[np.argmax(spec)] - f0) < 2.0

    def test_441_to_16k(self):
        x = np.ones(4410)
        y = resample(x, 44100, 16000)
        assert y.size == 1600

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            resample(np.ones(10), 0, 8000)


class TestTimeAxis:
    def test_values(self):
        t = time_axis(4, 2.0)
        assert np.allclose(t, [0.0, 0.5, 1.0, 1.5])

    def test_invalid(self):
        with pytest.raises(ValueError):
            time_axis(-1, 8000)
        with pytest.raises(ValueError):
            time_axis(10, 0)
