"""Tests for the markdown reports and feature stacking helpers."""

import numpy as np
import pytest

from repro.features import context_window, stack_deltas
from repro.hw import (
    DesignPoint,
    RASPI4,
    codesign_report_md,
    cost_report_md,
    estimate_cost,
    lower_module,
    markdown_table,
    roofline_report_md,
    run_codesign,
)
from repro.nn import Dense, ReLU, Sequential


class TestMarkdownTable:
    def test_renders_rows(self):
        md = markdown_table(["a", "b"], [[1, 2.5], ["x", 3.0]])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "| 1 | 2.5 |" in md

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            markdown_table(["a"], [[1, 2]])

    def test_empty_header_raises(self):
        with pytest.raises(ValueError):
            markdown_table([], [])


class TestHwReports:
    @pytest.fixture(scope="class")
    def ir(self):
        model = Sequential(Dense(16, 32), ReLU(), Dense(32, 4))
        return lower_module(model, (16,))

    def test_cost_report(self, ir):
        md = cost_report_md(estimate_cost(ir, RASPI4))
        assert "total latency" in md
        assert "| op |" in md

    def test_roofline_report(self, ir):
        md = roofline_report_md(ir, RASPI4)
        assert "Roofline on raspi4b" in md
        assert "dense" in md

    def test_codesign_report(self):
        result = run_codesign(DesignPoint(base_channels=8, n_blocks=2), sequence_length=4)
        md = codesign_report_md(result)
        assert "speedup" in md
        assert "(baseline)" in md
        assert "Pareto" in md

    def test_top_validation(self, ir):
        with pytest.raises(ValueError):
            cost_report_md(estimate_cost(ir, RASPI4), top=0)


class TestFeatureStacking:
    def test_stack_deltas_shape(self):
        f = np.random.default_rng(0).standard_normal((13, 50))
        stacked = stack_deltas(f, order=2)
        assert stacked.shape == (39, 50)

    def test_first_block_is_static(self):
        f = np.random.default_rng(1).standard_normal((5, 30))
        stacked = stack_deltas(f, order=1)
        assert np.allclose(stacked[:5], f)

    def test_constant_features_zero_deltas(self):
        f = np.ones((4, 20))
        stacked = stack_deltas(f, order=2)
        assert np.allclose(stacked[4:], 0.0)

    def test_context_window_shape(self):
        f = np.random.default_rng(2).standard_normal((8, 25))
        ctx = context_window(f, left=2, right=1)
        assert ctx.shape == (32, 25)

    def test_context_window_content(self):
        f = np.arange(10.0)[None, :]
        ctx = context_window(f, left=1, right=1)
        # Row 0 is the left-shifted stream, row 1 static, row 2 right-shifted.
        assert ctx[1, 5] == 5.0
        assert ctx[0, 5] == 4.0
        assert ctx[2, 5] == 6.0

    def test_edges_padded(self):
        f = np.arange(5.0)[None, :]
        ctx = context_window(f, left=2, right=0)
        assert ctx[0, 0] == 0.0  # repeated edge

    def test_validation(self):
        with pytest.raises(ValueError):
            stack_deltas(np.ones(5))
        with pytest.raises(ValueError):
            context_window(np.ones((2, 5)), left=-1)
        with pytest.raises(ValueError):
            stack_deltas(np.ones((2, 5)), order=5)
