"""Cross-module property-based tests (hypothesis).

These pin down invariants that hold across subsystem boundaries — the sort
of properties unit tests of a single module cannot express.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustics import (
    MicrophoneArray,
    RoadAcousticsSimulator,
    Scene,
    StaticPosition,
)
from repro.features import extract
from repro.hw import RASPI4, estimate_cost, lower_module, pipeline_schedule
from repro.nn import Dense, ReLU, Sequential
from repro.sed.models import FeatureFrontEnd
from repro.ssl import DoaGrid, FastSrpPhat, pair_tdoas

FS = 8000.0


class TestSimulatorProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=5.0, max_value=60.0), st.floats(min_value=0.5, max_value=3.0))
    def test_linearity_in_amplitude(self, distance, gain):
        """The whole propagation chain is LTI per static geometry:
        scaling the source scales the output."""
        mics = MicrophoneArray(np.array([[0.0, 0.0, 1.0]]))
        scene = Scene(StaticPosition([distance, 1.0, 1.0]), mics, surface=None)
        sim = RoadAcousticsSimulator(scene, FS, air_absorption=False)
        rng = np.random.default_rng(int(distance * 10))
        x = rng.standard_normal(2000)
        y1 = sim.simulate(x)
        y2 = sim.simulate(gain * x)
        assert np.allclose(y2, gain * y1, atol=1e-12)

    @settings(max_examples=8, deadline=None)
    @given(st.floats(min_value=3.0, max_value=40.0))
    def test_causality(self, distance):
        """No output before the propagation delay (minus interpolator
        support)."""
        mics = MicrophoneArray(np.array([[0.0, 0.0, 1.0]]))
        scene = Scene(StaticPosition([distance, 0.0, 1.0]), mics, surface=None)
        sim = RoadAcousticsSimulator(scene, FS, air_absorption=False)
        x = np.zeros(3000)
        x[0] = 1.0
        y = sim.simulate(x)[0]
        arrival = int(np.floor(sim.path_snapshot(0.0).direct_delay_s * FS))
        assert np.allclose(y[: max(0, arrival - 3)], 0.0, atol=1e-12)


class TestSrpProperties:
    MICS = np.array(
        [[0.1, 0.1, 1.0], [0.1, -0.1, 1.0], [-0.1, -0.1, 1.0], [-0.1, 0.1, 1.0]]
    )

    @settings(max_examples=8, deadline=None)
    @given(st.floats(min_value=0.1, max_value=10.0))
    def test_map_peak_invariant_to_gain(self, gain):
        """PHAT whitening makes the SRP map's argmax gain-invariant."""
        loc = FastSrpPhat(self.MICS, FS, grid=DoaGrid(n_azimuth=24, n_elevation=2), n_fft=512)
        rng = np.random.default_rng(7)
        frames = rng.standard_normal((4, 256))
        m1 = loc.map_from_frames(frames)
        m2 = loc.map_from_frames(gain * frames)
        assert np.argmax(m1) == np.argmax(m2)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=8))
    def test_tdoa_triangle_identity(self, n_mics):
        """tau_ik == tau_ij + tau_jk for far-field TDOAs of any geometry."""
        rng = np.random.default_rng(n_mics)
        positions = rng.uniform(-1, 1, size=(n_mics, 3)) + [0, 0, 2.0]
        dirs = DoaGrid(n_azimuth=8, n_elevation=1).directions()
        taus = pair_tdoas(positions, dirs)
        from repro.ssl.srp import mic_pairs

        pairs = mic_pairs(n_mics)
        index = {p: k for k, p in enumerate(pairs)}
        for i in range(n_mics - 2):
            t_ij = taus[index[(i, i + 1)]]
            t_jk = taus[index[(i + 1, i + 2)]]
            t_ik = taus[index[(i, i + 2)]]
            assert np.allclose(t_ik, t_ij + t_jk, atol=1e-12)


class TestFeatureProperties:
    @settings(max_examples=8, deadline=None)
    @given(st.sampled_from(["spectrogram", "log_mel", "gammatonegram"]))
    def test_log_features_shift_under_gain(self, name):
        """Log-power features of a scaled signal differ by a constant
        (maximum-referenced dB maps are exactly invariant)."""
        rng = np.random.default_rng(3)
        x = rng.standard_normal(4000)
        f1 = extract(name, x, FS)
        f2 = extract(name, 4.0 * x, FS)
        assert np.allclose(f1, f2, atol=1e-6)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_front_end_batch_consistency(self, seed):
        """Batched extraction equals per-clip extraction."""
        rng = np.random.default_rng(seed)
        fe = FeatureFrontEnd("log_mel", FS, n_frames=16, n_mels=16)
        clips = rng.standard_normal((3, 2000))
        batch = fe(clips)
        singles = np.concatenate([fe(c[None, :]) for c in clips])
        assert np.allclose(batch, singles)


class TestHwProperties:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=2, max_value=64))
    def test_cost_monotone_in_width(self, depth, width):
        """Wider/deeper models never get cheaper on any device."""
        def build(w, d):
            layers = [Dense(16, w), ReLU()]
            for _ in range(d - 1):
                layers.extend([Dense(w, w), ReLU()])
            layers.append(Dense(w, 4))
            return Sequential(*layers)

        small = estimate_cost(lower_module(build(width, depth), (16,)), RASPI4)
        big = estimate_cost(lower_module(build(width * 2, depth), (16,)), RASPI4)
        assert big.latency_s >= small.latency_s

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=1, max_value=6))
    def test_schedule_work_conservation(self, n_stages):
        """Staging never changes total work, and II <= total latency."""
        model = Sequential(Dense(32, 64), ReLU(), Dense(64, 64), ReLU(), Dense(64, 8))
        ir = lower_module(model, (32,))
        serial = estimate_cost(ir, RASPI4).latency_s
        schedule = pipeline_schedule(ir, RASPI4, n_stages=n_stages)
        assert schedule.frame_latency_s == pytest.approx(serial, rel=1e-9)
        assert schedule.initiation_interval_s <= serial + 1e-12
