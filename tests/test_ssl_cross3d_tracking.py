"""Tests for the Cross3D model and the Kalman DOA tracker."""

import numpy as np
import pytest

from repro.ssl import (
    Cross3DConfig,
    Cross3DNet,
    KalmanDoaTracker,
    azel_to_unit,
    edge_variant,
    evaluate_cross3d,
    srp_map_sequence,
    track_sequence,
    train_cross3d,
)
from repro.ssl.doa import DoaGrid
from repro.ssl.srp_fast import FastSrpPhat

SMALL = Cross3DConfig(map_shape=(12, 4), base_channels=6, n_blocks=2, kernel_time=3)


def synthetic_maps(n, t_steps, cfg, seed=0):
    """SRP-like maps with a blurred moving peak and matching unit targets."""
    rng = np.random.default_rng(seed)
    a, e = cfg.map_shape
    maps = np.zeros((n, 1, t_steps, a, e))
    targets = np.zeros((n, t_steps, 3))
    azs = np.linspace(-np.pi, np.pi, a, endpoint=False)
    els = np.linspace(0, np.pi / 6, e)
    for i in range(n):
        start = rng.uniform(-np.pi, np.pi)
        rate = rng.uniform(-0.15, 0.15)
        el_idx = int(rng.integers(0, e))
        for t in range(t_steps):
            az = (start + rate * t + np.pi) % (2 * np.pi) - np.pi
            dist = np.abs((azs - az + np.pi) % (2 * np.pi) - np.pi)
            maps[i, 0, t, :, el_idx] = np.exp(-0.5 * (dist / 0.4) ** 2)
            maps[i, 0, t] += 0.1 * rng.standard_normal((a, e))
            targets[i, t] = azel_to_unit(az, els[el_idx])
    return maps, targets


class TestCross3DNet:
    def test_output_shape(self):
        net = Cross3DNet(SMALL)
        out = net.forward(np.zeros((2, 1, 5, 12, 4)))
        assert out.shape == (2, 3, 5)

    def test_causality(self):
        # Changing future map frames must not change earlier outputs.
        net = Cross3DNet(SMALL)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 1, 6, 12, 4))
        net.eval()
        y1 = net.forward(x)
        x2 = x.copy()
        x2[:, :, 4:] += 10.0
        y2 = net.forward(x2)
        assert np.allclose(y1[:, :, :4], y2[:, :, :4], atol=1e-9)
        assert not np.allclose(y1[:, :, 4:], y2[:, :, 4:])

    def test_edge_variant_smaller(self):
        base = Cross3DNet(Cross3DConfig())
        edge = Cross3DNet(edge_variant(Cross3DConfig()))
        reduction = 1.0 - edge.n_parameters() / base.n_parameters()
        assert reduction > 0.8  # the "~86% smaller" ballpark

    def test_predict_directions_unit_norm(self):
        net = Cross3DNet(SMALL)
        dirs = net.predict_directions(np.random.default_rng(1).standard_normal((2, 1, 4, 12, 4)))
        assert np.allclose(np.linalg.norm(dirs, axis=-1), 1.0)

    def test_shape_validation(self):
        net = Cross3DNet(SMALL)
        with pytest.raises(ValueError):
            net.forward(np.zeros((1, 2, 4, 12, 4)))
        with pytest.raises(ValueError):
            net.forward(np.zeros((1, 1, 4, 10, 4)))

    def test_training_reduces_loss_and_error(self):
        maps, targets = synthetic_maps(24, 6, SMALL, seed=3)
        net = Cross3DNet(SMALL, rng=np.random.default_rng(5))
        err_before = evaluate_cross3d(net, maps, targets)
        losses = train_cross3d(net, maps, targets, epochs=12, lr=3e-3, batch_size=8)
        err_after = evaluate_cross3d(net, maps, targets)
        assert losses[-1] < losses[0]
        assert err_after < err_before

    def test_train_validation(self):
        net = Cross3DNet(SMALL)
        with pytest.raises(ValueError):
            train_cross3d(net, np.zeros((2, 1, 4, 12, 4)), np.zeros((2, 5, 3)))


class TestSrpMapSequence:
    def test_shapes_and_normalization(self):
        mics = np.array([[0.1, 0, 1.0], [-0.1, 0, 1.0], [0, 0.1, 1.0]])
        grid = DoaGrid(n_azimuth=12, n_elevation=4, el_max=np.pi / 6)
        loc = FastSrpPhat(mics, 16000, grid=grid, n_fft=512)
        rng = np.random.default_rng(0)
        signals = rng.standard_normal((3, 4000))
        maps = srp_map_sequence(signals, loc, frame_length=256, hop_length=128)
        assert maps.shape == ((4000 - 256) // 128 + 1, 12, 4)
        assert np.allclose(maps.mean(axis=(1, 2)), 0.0, atol=1e-9)

    def test_too_short_raises(self):
        mics = np.array([[0.1, 0, 1.0], [-0.1, 0, 1.0]])
        loc = FastSrpPhat(mics, 16000, n_fft=512)
        with pytest.raises(ValueError):
            srp_map_sequence(np.zeros((2, 100)), loc, 256, 128)


class TestKalmanTracker:
    def test_smooths_noisy_azimuth(self):
        rng = np.random.default_rng(0)
        t = np.arange(100)
        truth = 0.01 * t
        noisy = truth + 0.3 * rng.standard_normal(100)
        states = track_sequence(noisy, measurement_noise=0.3)
        est = np.array([s.azimuth for s in states])[20:]
        raw_err = np.abs(noisy[20:] - truth[20:]).mean()
        trk_err = np.abs(est - truth[20:]).mean()
        assert trk_err < raw_err

    def test_tracks_through_dropout(self):
        truth = 0.02 * np.arange(60)
        detected = np.ones(60, dtype=bool)
        detected[30:40] = False
        states = track_sequence(truth, detected=detected, measurement_noise=0.01)
        est = np.array([s.azimuth for s in states])
        assert np.abs(est[39] - truth[39]) < 0.1

    def test_wraps_through_pi(self):
        # Crossing the +-pi seam must not produce a 2*pi jump.
        az = np.concatenate([np.linspace(3.0, np.pi - 0.01, 20), np.linspace(-np.pi + 0.01, -3.0, 20)])
        states = track_sequence(az, measurement_noise=0.05)
        est = np.array([s.azimuth for s in states])
        step = np.abs(np.diff(est))
        step = np.minimum(step, 2 * np.pi - step)
        assert step.max() < 0.3

    def test_predict_before_update_raises(self):
        with pytest.raises(RuntimeError):
            KalmanDoaTracker().predict()

    def test_rate_estimated(self):
        truth = 0.05 * np.arange(80)
        states = track_sequence(truth, measurement_noise=0.01)
        assert states[-1].azimuth_rate == pytest.approx(0.05, abs=0.01)

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            KalmanDoaTracker(process_noise=0.0)
