"""Tests for the variable-length fractional delay lines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustics.delay_line import (
    INTERPOLATORS,
    StreamingDelayReader,
    VariableDelayLine,
    render_varying_delay,
)


class TestRenderVaryingDelay:
    @pytest.mark.parametrize("interp", INTERPOLATORS)
    def test_constant_integer_delay(self, interp):
        x = np.random.default_rng(0).standard_normal(256)
        d = np.full(256, 10.0)
        y = render_varying_delay(x, d, interpolation=interp)
        assert np.allclose(y[30:200], x[20:190], atol=1e-6)

    @pytest.mark.parametrize("interp", INTERPOLATORS)
    def test_constant_fractional_delay_tone(self, interp):
        fs, f0, d = 8000, 400.0, 7.5
        n = np.arange(1024)
        x = np.sin(2 * np.pi * f0 * n / fs)
        y = render_varying_delay(x, np.full(1024, d), interpolation=interp)
        expected = np.sin(2 * np.pi * f0 * (n - d) / fs)
        interior = slice(100, 900)
        atol = 0.02 if interp == "linear" else 5e-3
        assert np.allclose(y[interior], expected[interior], atol=atol)

    def test_wavefront_silence_before_arrival(self):
        x = np.ones(100)
        d = np.full(100, 20.0)
        y = render_varying_delay(x, d, interpolation="linear")
        assert np.allclose(y[:19], 0.0)
        assert y[30] == pytest.approx(1.0)

    def test_shrinking_delay_compresses_time(self):
        # A delay shrinking by 0.5 samples/sample plays the input at 1.5x
        # speed: output frequency rises by the Doppler factor.
        fs, f0 = 8000, 500.0
        n = np.arange(4096)
        x = np.sin(2 * np.pi * f0 * n / fs)
        d = 300.0 - 0.5 * n / 4096 * 4096 / 8  # shrink 0.5 samples per 8 samples
        d = 300.0 - n * 0.0625
        y = render_varying_delay(x, np.clip(d, 0, None), interpolation="lagrange")
        seg = y[2000:3000] * np.hanning(1000)
        freqs = np.fft.rfftfreq(1000, 1 / fs)
        peak = freqs[np.argmax(np.abs(np.fft.rfft(seg)))]
        assert peak == pytest.approx(f0 * 1.0625, rel=0.02)

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            render_varying_delay(np.ones(10), np.full(10, -1.0))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_varying_delay(np.ones(10), np.ones(5))

    def test_unknown_interpolation_raises(self):
        with pytest.raises(ValueError, match="unknown interpolation"):
            render_varying_delay(np.ones(10), np.ones(10), interpolation="spline")

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=1.0, max_value=50.0))
    def test_energy_bounded(self, delay):
        rng = np.random.default_rng(int(delay * 7))
        x = rng.standard_normal(512)
        y = render_varying_delay(x, np.full(512, delay), interpolation="lagrange")
        assert np.sqrt(np.mean(y**2)) <= 1.5 * np.sqrt(np.mean(x**2))


class TestStreamingDelayLine:
    def test_matches_vectorized(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal(200)
        delays = 20.0 + 5.0 * np.sin(np.linspace(0, 3, 200))
        vec = render_varying_delay(x, delays, interpolation="lagrange", order=3)
        dl = VariableDelayLine(max_delay=50.0, order=3)
        stream = np.array([dl.process(x[i], delays[i]) for i in range(200)])
        assert np.allclose(stream, vec, atol=1e-9)

    def test_zero_before_arrival(self):
        dl = VariableDelayLine(max_delay=16.0)
        outs = [dl.process(1.0, 10.0) for _ in range(8)]
        assert all(o == 0.0 for o in outs)

    def test_reset(self):
        dl = VariableDelayLine(max_delay=8.0)
        for _ in range(20):
            dl.process(1.0, 2.0)
        dl.reset()
        assert dl.process(0.0, 2.0) == 0.0

    def test_delay_out_of_range_raises(self):
        dl = VariableDelayLine(max_delay=8.0)
        dl.write(1.0)
        with pytest.raises(ValueError):
            dl.read(9.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            VariableDelayLine(max_delay=0.0)
        with pytest.raises(ValueError):
            VariableDelayLine(max_delay=8.0, order=0)


class TestStreamingDelayReader:
    """Block-streamed reads must equal the offline render bit for bit."""

    @pytest.mark.parametrize("interp", INTERPOLATORS)
    def test_blockwise_bit_identical_to_offline(self, interp):
        rng = np.random.default_rng(9)
        x = rng.standard_normal(1500)
        n = np.arange(1500)
        delays = 25.0 + 8.0 * np.sin(n / 60.0)
        offline = render_varying_delay(x, delays, interpolation=interp)
        r = StreamingDelayReader(interpolation=interp)
        r.feed(x)
        r.end()
        # Ragged block sizes straddle every internal boundary the offline
        # call never sees; the concatenation must still be *exactly* equal.
        out, cuts = [], [0, 1, 7, 200, 201, 456, 1024, 1499, 1500]
        for a, b in zip(cuts[:-1], cuts[1:]):
            out.append(r.read(delays[a:b]))
        assert np.array_equal(np.concatenate(out), offline)

    @pytest.mark.parametrize("interp", INTERPOLATORS)
    def test_interleaved_feed_and_read(self, interp):
        rng = np.random.default_rng(10)
        x = rng.standard_normal(2048)
        delays = np.stack(
            [30.0 + 5.0 * np.sin(np.arange(2048) / 40.0), np.full(2048, 64.25)]
        )
        offline = render_varying_delay(x, delays, interpolation=interp)
        r = StreamingDelayReader(interpolation=interp)
        out = []
        # Feed runs ahead of the read cursor by more than the max delay plus
        # the interpolator lookahead, as a hop-clocked session would.
        for k in range(0, 2048, 256):
            r.feed(x[k : k + 256])
            if k >= 256:
                out.append(r.read(delays[:, k - 256 : k]))
        r.end()
        out.append(r.read(delays[:, 2048 - 256 :]))
        assert np.array_equal(np.concatenate(out, axis=1), offline)

    def test_midstream_read_past_fed_raises(self):
        r = StreamingDelayReader(interpolation="linear")
        r.feed(np.ones(100))
        with pytest.raises(ValueError, match="feed more or call end"):
            r.read(np.zeros(200))  # needs source sample 199, only 100 fed

    def test_end_zero_extends_like_offline(self):
        x = np.random.default_rng(11).standard_normal(64)
        delays = np.full(128, 3.5)
        padded = render_varying_delay(
            np.concatenate([x, np.zeros(64)]), delays, interpolation="lagrange"
        )
        r = StreamingDelayReader()
        r.feed(x)
        r.end()
        assert np.array_equal(r.read(delays), padded)

    def test_nothing_fed_reads_zeros(self):
        r = StreamingDelayReader()
        r.end()
        out = r.read(np.full((2, 16), 5.0))
        assert out.shape == (2, 16)
        assert np.array_equal(out, np.zeros((2, 16)))

    def test_feed_after_end_raises(self):
        r = StreamingDelayReader()
        r.end()
        with pytest.raises(RuntimeError):
            r.feed(np.ones(4))

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown interpolation"):
            StreamingDelayReader(interpolation="spline")
        with pytest.raises(ValueError):
            StreamingDelayReader(interpolation="lagrange", order=0)
        with pytest.raises(ValueError):
            StreamingDelayReader(interpolation="sinc", sinc_half_width=1)
        r = StreamingDelayReader()
        with pytest.raises(ValueError):
            r.feed(np.ones((2, 4)))
        r.feed(np.ones(64))
        with pytest.raises(ValueError):
            r.read(np.full(8, -1.0))
        with pytest.raises(ValueError):
            r.read(np.zeros(0))

    def test_reset_clears_everything(self):
        r = StreamingDelayReader(interpolation="linear")
        r.feed(np.ones(32))
        r.end()
        r.read(np.zeros(16))
        r.reset()
        assert r.n_fed == 0 and r.n_read == 0 and not r.ended
        r.feed(np.ones(8))  # feeding works again after reset

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=500), st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_splits_bit_identical(self, first_cut, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(500)
        delays = rng.uniform(0.0, 80.0, 500)
        offline = render_varying_delay(x, delays, interpolation="lagrange")
        r = StreamingDelayReader()
        r.feed(x)
        r.end()
        got = np.concatenate([r.read(delays[:first_cut]), r.read(delays[first_cut:])]) \
            if first_cut < 500 else r.read(delays)
        assert np.array_equal(got, offline)


class TestBatchedDelays:
    """A (..., n) delay matrix renders every receiver in one gather."""

    @pytest.mark.parametrize("interp", INTERPOLATORS)
    def test_matches_per_row_rendering(self, interp):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(400)
        n = np.arange(400)
        delays = np.stack(
            [
                20.0 + 5.0 * np.sin(n / 50.0),
                35.0 - 0.02 * n,
                np.full(400, 7.25),
            ]
        )
        batched = render_varying_delay(x, delays, interpolation=interp)
        assert batched.shape == (3, 400)
        for row in range(3):
            single = render_varying_delay(x, delays[row], interpolation=interp)
            assert np.allclose(batched[row], single, atol=1e-12)

    def test_trailing_axis_must_match(self):
        with pytest.raises(ValueError):
            render_varying_delay(np.ones(10), np.ones((3, 5)))
