"""Tests for the end-to-end pipeline, modes and real-time accounting."""

import numpy as np
import pytest

from repro.core import (
    AcousticPerceptionPipeline,
    EnergyTrigger,
    LatencyMonitor,
    ParkModeController,
    PipelineConfig,
    measure_latency,
    mode_energy_report,
    realtime_ok,
)
from repro.hw import RASPI4
from repro.sed.events import EVENT_CLASSES

MICS = np.array(
    [[0.1, 0.1, 1.0], [0.1, -0.1, 1.0], [-0.1, -0.1, 1.0], [-0.1, 0.1, 1.0]]
)
CFG = PipelineConfig(fs=16000.0, frame_length=512, hop_length=256, n_azimuth=24, n_elevation=2)


@pytest.fixture(scope="module")
def pipeline():
    return AcousticPerceptionPipeline(MICS, CFG)


class TestPipelineConfig:
    def test_frame_period(self):
        assert CFG.frame_period_s == pytest.approx(0.016)

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(frame_length=500)
        with pytest.raises(ValueError):
            PipelineConfig(localizer="beamformer")
        with pytest.raises(ValueError):
            PipelineConfig(hop_length=0)
        with pytest.raises(ValueError):
            PipelineConfig(n_fft_srp=512, frame_length=512)


class TestPipeline:
    def test_process_frame_fields(self, pipeline):
        rng = np.random.default_rng(0)
        result = pipeline.process_frame(rng.standard_normal((4, 512)))
        assert result.label in EVENT_CLASSES
        assert 0.0 <= result.confidence <= 1.0

    def test_process_signal_counts_frames(self, pipeline):
        pipeline.reset()
        rng = np.random.default_rng(1)
        results = pipeline.process_signal(rng.standard_normal((4, 4000)))
        assert len(results) == 1 + (4000 - 512) // 256
        assert [r.frame_index for r in results] == list(range(len(results)))

    def test_frame_shape_validation(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.process_frame(np.zeros((4, 100)))
        with pytest.raises(ValueError):
            pipeline.process_signal(np.zeros((2, 4000)))

    def test_detection_triggers_localization(self):
        # A detector that always reports a confident siren forces the SSL path.
        from repro.nn import Dense, Sequential

        class AlwaysSiren(Sequential):
            def __init__(self):
                super().__init__(Dense(CFG.n_mels, len(EVENT_CLASSES)))

            def forward(self, x):
                out = np.full((x.shape[0], len(EVENT_CLASSES)), -10.0)
                out[:, 1] = 10.0  # siren_wail
                return out

        p = AcousticPerceptionPipeline(MICS, CFG, detector=AlwaysSiren())
        rng = np.random.default_rng(2)
        result = p.process_frame(rng.standard_normal((4, 512)))
        assert result.detected
        assert np.isfinite(result.azimuth)

    def test_to_ir_has_pipeline_stages(self, pipeline):
        ir = pipeline.to_ir()
        kinds = {op.kind for op in ir.ops()}
        assert {"fft", "filterbank", "gcc", "srp_steer"} <= kinds

    def test_fast_localizer_cheaper_in_ir(self):
        from repro.hw import estimate_cost

        slow = AcousticPerceptionPipeline(MICS, PipelineConfig(localizer="srp"))
        fast = AcousticPerceptionPipeline(MICS, PipelineConfig(localizer="srp_fast"))
        c_slow = estimate_cost(slow.to_ir(), RASPI4)
        c_fast = estimate_cost(fast.to_ir(), RASPI4)
        assert c_fast.latency_s < c_slow.latency_s


class TestEnergyTrigger:
    def test_triggers_on_band_energy_step(self):
        fs, n = 16000.0, 512
        trig = EnergyTrigger(fs, n, threshold_db=6.0)
        rng = np.random.default_rng(3)
        t = np.arange(n) / fs
        quiet = 0.01 * rng.standard_normal((40, n))
        fired_quiet = [trig(f) for f in quiet]
        loud = 5.0 * np.sin(2 * np.pi * 1000 * t)
        assert not any(fired_quiet[1:])
        assert trig(loud + 0.01 * rng.standard_normal(n))

    def test_ignores_out_of_band_rumble(self):
        fs, n = 16000.0, 512
        trig = EnergyTrigger(fs, n, band_hz=(300.0, 2000.0), threshold_db=6.0)
        rng = np.random.default_rng(4)
        t = np.arange(n) / fs
        for _ in range(20):
            trig(0.01 * rng.standard_normal(n))
        rumble = 5.0 * np.sin(2 * np.pi * 50 * t)
        assert not trig(rumble)

    def test_ir_is_cheap(self):
        from repro.hw import estimate_cost

        trig = EnergyTrigger(16000.0, 512)
        cost = estimate_cost(trig.to_ir(), RASPI4)
        assert cost.latency_s < 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyTrigger(16000.0, 512, band_hz=(2000.0, 300.0))
        with pytest.raises(ValueError):
            EnergyTrigger(16000.0, 512, threshold_db=0.0)


class TestParkMode:
    def test_sleeps_on_quiet_input(self, pipeline):
        pipeline.reset()
        park = ParkModeController(pipeline, wake_frames=5)
        rng = np.random.default_rng(5)
        out = park.process_signal(0.01 * rng.standard_normal((4, 16000)))
        assert park.duty_cycle < 0.5
        assert sum(1 for r in out if r is None) > 0

    def test_wakes_on_loud_event(self, pipeline):
        pipeline.reset()
        park = ParkModeController(pipeline, wake_frames=5)
        fs, n = 16000, 24000
        rng = np.random.default_rng(6)
        sig = 0.005 * rng.standard_normal((4, n))
        t = np.arange(8000) / fs
        sig[:, 12000:20000] += 2.0 * np.sin(2 * np.pi * 900 * t)
        park.process_signal(sig)
        assert park.frames_awake > 0

    def test_energy_report_savings(self, pipeline):
        report = mode_energy_report(pipeline, RASPI4, duty_cycle=0.02)
        assert report.park_power_w < report.drive_power_w
        assert report.savings_factor > 1.0

    def test_energy_report_full_duty_no_savings(self, pipeline):
        report = mode_energy_report(pipeline, RASPI4, duty_cycle=1.0)
        assert report.savings_factor == pytest.approx(1.0, abs=0.3)

    def test_validation(self, pipeline):
        with pytest.raises(ValueError):
            ParkModeController(pipeline, wake_frames=0)
        with pytest.raises(ValueError):
            mode_energy_report(pipeline, RASPI4, duty_cycle=1.5)


class TestRealtime:
    def test_measure_latency(self):
        stats = measure_latency(lambda: None, deadline_s=0.01, repeats=5)
        assert stats.realtime
        assert stats.headroom > 1.0

    def test_realtime_ok(self):
        assert realtime_ok(0.005, 0.016)
        assert not realtime_ok(0.02, 0.016)
        assert not realtime_ok(0.01, 0.016, margin=2.0)

    def test_monitor_counts_misses(self):
        mon = LatencyMonitor(deadline_s=1e-9)
        for _ in range(3):
            mon.tick_start()
            sum(range(1000))
            mon.tick_end()
        assert mon.n_ticks == 3
        assert mon.misses == 3

    def test_monitor_stats(self):
        mon = LatencyMonitor(deadline_s=1.0)
        mon.tick_start()
        mon.tick_end()
        stats = mon.stats()
        assert stats.deadline_s == 1.0
        assert stats.realtime

    def test_monitor_misuse_raises(self):
        mon = LatencyMonitor(1.0)
        with pytest.raises(RuntimeError):
            mon.tick_end()
        with pytest.raises(RuntimeError):
            mon.stats()

    def test_pipeline_tick_meets_deadline_on_host(self, pipeline):
        # The host machine is far faster than a RasPi; one tick must fit the
        # 16 ms hop comfortably.
        rng = np.random.default_rng(7)
        frames = rng.standard_normal((4, 512))
        stats = measure_latency(
            lambda: pipeline.process_frame(frames), CFG.frame_period_s, repeats=10
        )
        assert stats.mean_s < CFG.frame_period_s


class TestMusicLocalizerOption:
    def test_pipeline_with_music_localizer(self):
        from repro.ssl.music import MusicDoa

        cfg = PipelineConfig(localizer="music", n_azimuth=24, n_elevation=2)
        p = AcousticPerceptionPipeline(MICS, cfg)
        assert isinstance(p.localizer, MusicDoa)
        rng = np.random.default_rng(8)
        result = p.process_frame(rng.standard_normal((4, cfg.frame_length)))
        assert result.label in EVENT_CLASSES

    def test_music_ir_costed(self):
        from repro.hw import estimate_cost

        cfg = PipelineConfig(localizer="music", n_azimuth=24, n_elevation=2)
        p = AcousticPerceptionPipeline(MICS, cfg)
        cost = estimate_cost(p.to_ir(), RASPI4)
        assert cost.latency_s > 0
        kinds = {op.kind for op in p.to_ir().ops()}
        assert "srp_steer" in kinds

    def test_invalid_localizer_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(localizer="espirit")
