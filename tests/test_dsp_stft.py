"""Tests for repro.dsp.stft: framing, windows, STFT round-trip."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.stft import (
    db,
    frame_signal,
    frame_signals,
    get_window,
    istft,
    magnitude,
    overlap_add,
    power,
    stft,
    stft_batch,
)


class TestGetWindow:
    @pytest.mark.parametrize("name", ["hann", "hamming", "blackman", "rect", "bartlett"])
    def test_length(self, name):
        assert get_window(name, 128).shape == (128,)

    def test_hann_endpoints_periodic(self):
        w = get_window("hann", 64)
        assert w[0] == pytest.approx(0.0)
        assert w[32] == pytest.approx(1.0)

    def test_rect_is_ones(self):
        assert np.all(get_window("rect", 10) == 1.0)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown window"):
            get_window("kaiser", 64)

    def test_nonpositive_length_raises(self):
        with pytest.raises(ValueError):
            get_window("hann", 0)

    def test_hann_cola_at_half_overlap(self):
        w = get_window("hann", 64)
        total = w[:32] + w[32:]
        assert np.allclose(total, 1.0)

    def test_cached_and_read_only(self):
        a = get_window("hann", 128)
        b = get_window("hann", 128)
        assert a is b  # memoized coefficient table
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0] = 1.0


class TestFrameSignal:
    def test_shape_no_pad(self):
        frames = frame_signal(np.arange(100.0), 32, 16, pad=False)
        assert frames.shape == (5, 32)

    def test_shape_with_pad_covers_signal(self):
        frames = frame_signal(np.arange(100.0), 32, 16, pad=True)
        assert frames.shape[0] * 16 + 16 >= 100

    def test_content(self):
        x = np.arange(64.0)
        frames = frame_signal(x, 16, 8, pad=False)
        assert np.all(frames[0] == x[:16])
        assert np.all(frames[1] == x[8:24])

    def test_short_signal_padded(self):
        frames = frame_signal(np.ones(5), 16, 8, pad=True)
        assert frames.shape == (1, 16)
        assert frames[0, :5].sum() == 5.0
        assert frames[0, 5:].sum() == 0.0

    def test_short_signal_no_pad_empty(self):
        assert frame_signal(np.ones(5), 16, 8, pad=False).shape == (0, 16)

    def test_2d_input_raises(self):
        with pytest.raises(ValueError):
            frame_signal(np.ones((4, 4)), 2, 1)

    def test_bad_geometry_raises(self):
        with pytest.raises(ValueError):
            frame_signal(np.ones(16), 0, 4)

    def test_no_pad_is_zero_copy_view(self):
        x = np.arange(128.0)
        frames = frame_signal(x, 32, 16, pad=False)
        assert frames.base is not None  # strided view, no materialized copy
        exact = frame_signal(x, 32, 16, pad=True)
        assert exact.base is not None  # exact hop fit also avoids the copy


class TestFrameSignals:
    def test_matches_per_row_framing(self):
        x = np.random.default_rng(0).standard_normal((3, 100))
        batched = frame_signals(x, 32, 16)
        for row, ref in zip(batched, (frame_signal(r, 32, 16) for r in x)):
            assert np.array_equal(row, ref)

    def test_no_pad_matches(self):
        x = np.random.default_rng(1).standard_normal((2, 5, 100))
        batched = frame_signals(x, 32, 16, pad=False)
        assert batched.shape == (2, 5, 5, 32)

    def test_short_no_pad_empty(self):
        assert frame_signals(np.ones((3, 5)), 16, 8, pad=False).shape == (3, 0, 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            frame_signals(np.ones((2, 16)), 4, 0)


class TestStftBatch:
    def test_matches_per_signal_stft(self):
        x = np.random.default_rng(2).standard_normal((4, 2000))
        batched = stft_batch(x, 256, 64)
        for row, ref in zip(batched, (stft(r, 256, 64) for r in x)):
            assert np.allclose(row, ref)

    def test_short_signal_constant_pad_branch(self):
        x = np.random.default_rng(3).standard_normal((2, 100))
        batched = stft_batch(x, 256, 64)
        for row, ref in zip(batched, (stft(r, 256, 64) for r in x)):
            assert np.allclose(row, ref)

    def test_uncentered(self):
        x = np.random.default_rng(4).standard_normal((2, 1024))
        batched = stft_batch(x, 256, 128, center=False)
        for row, ref in zip(batched, (stft(r, 256, 128, center=False) for r in x)):
            assert np.allclose(row, ref)

    def test_empty_signal_raises(self):
        with pytest.raises(ValueError):
            stft_batch(np.empty((2, 0)))


class TestOverlapAdd:
    def test_inverse_of_framing_rect(self):
        x = np.random.default_rng(0).standard_normal(128)
        frames = frame_signal(x, 16, 16, pad=False)
        assert np.allclose(overlap_add(frames, 16), x)

    def test_overlap_doubles_interior(self):
        frames = np.ones((3, 8))
        y = overlap_add(frames, 4)
        assert y[4] == 2.0  # covered by frames 0 and 1

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            overlap_add(np.ones(8), 4)


class TestStftRoundTrip:
    @pytest.mark.parametrize("n_fft,hop", [(256, 64), (512, 128), (128, 32)])
    def test_reconstruction(self, n_fft, hop):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(2048)
        spec = stft(x, n_fft, hop)
        y = istft(spec, hop, length=x.size)
        assert np.allclose(y, x, atol=1e-8)

    def test_output_shape(self):
        spec = stft(np.zeros(1000), 256, 64)
        assert spec.shape[0] == 129

    def test_tone_peak_bin(self):
        fs, f0 = 8000, 1000.0
        t = np.arange(fs) / fs
        spec = magnitude(stft(np.sin(2 * np.pi * f0 * t), 512, 128))
        freqs = np.fft.rfftfreq(512, 1 / fs)
        peak = freqs[np.argmax(spec[:, spec.shape[1] // 2])]
        assert abs(peak - f0) < fs / 512

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=300, max_value=3000))
    def test_roundtrip_random_lengths(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n)
        y = istft(stft(x, 128, 32), 32, length=n)
        assert np.allclose(y, x, atol=1e-8)


class TestDb:
    def test_reference(self):
        assert db(np.array([1.0]), ref=1.0)[0] == pytest.approx(0.0)

    def test_floor(self):
        assert db(np.array([0.0]), floor_db=-80.0)[0] == pytest.approx(-80.0)

    def test_ratio(self):
        assert db(np.array([10.0]))[0] == pytest.approx(10.0)

    def test_bad_ref_raises(self):
        with pytest.raises(ValueError):
            db(np.ones(3), ref=0.0)

    def test_power_and_magnitude(self):
        z = np.array([[3 + 4j]])
        assert magnitude(z)[0, 0] == pytest.approx(5.0)
        assert power(z)[0, 0] == pytest.approx(25.0)
