"""Tests for losses, optimizers, pruning and quantization."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    BCEWithLogitsLoss,
    CrossEntropyLoss,
    Dense,
    MSELoss,
    Parameter,
    QuantizationSpec,
    ReLU,
    Sequential,
    apply_masks,
    channel_importance,
    dequantize_array,
    magnitude_prune,
    quantization_error,
    quantize_array,
    quantize_module,
    softmax,
    sparsity,
)

RNG = np.random.default_rng(0)


class TestSoftmaxAndCrossEntropy:
    def test_softmax_sums_to_one(self):
        p = softmax(RNG.standard_normal((4, 7)))
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_softmax_shift_invariance(self):
        x = RNG.standard_normal((2, 5))
        assert np.allclose(softmax(x), softmax(x + 100.0))

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss = CrossEntropyLoss().forward(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_loss_is_log_k(self):
        loss = CrossEntropyLoss().forward(np.zeros((3, 4)), np.array([0, 1, 2]))
        assert loss == pytest.approx(np.log(4.0))

    def test_gradient_matches_numeric(self):
        loss_fn = CrossEntropyLoss()
        logits = RNG.standard_normal((3, 4))
        targets = np.array([0, 2, 1])
        loss_fn.forward(logits, targets)
        g = loss_fn.backward()
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                lp = logits.copy()
                lp[i, j] += eps
                lm = logits.copy()
                lm[i, j] -= eps
                num = (loss_fn.forward(lp, targets) - loss_fn.forward(lm, targets)) / (2 * eps)
                assert g[i, j] == pytest.approx(num, abs=1e-6)

    def test_label_out_of_range_raises(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss().forward(np.zeros((2, 3)), np.array([0, 3]))


class TestMseAndBce:
    def test_mse_zero_for_equal(self):
        assert MSELoss().forward(np.ones(5), np.ones(5)) == 0.0

    def test_mse_gradient(self):
        loss = MSELoss()
        pred = np.array([1.0, 2.0])
        loss.forward(pred, np.array([0.0, 0.0]))
        assert np.allclose(loss.backward(), [1.0, 2.0])

    def test_bce_symmetric(self):
        loss = BCEWithLogitsLoss()
        v = loss.forward(np.array([0.0]), np.array([0.5]))
        assert v == pytest.approx(np.log(2.0))

    def test_bce_gradient_matches_numeric(self):
        loss = BCEWithLogitsLoss()
        logits = RNG.standard_normal(6)
        targets = (RNG.uniform(size=6) > 0.5).astype(float)
        loss.forward(logits, targets)
        g = loss.backward()
        eps = 1e-6
        for i in range(6):
            lp, lm = logits.copy(), logits.copy()
            lp[i] += eps
            lm[i] -= eps
            num = (loss.forward(lp, targets) - loss.forward(lm, targets)) / (2 * eps)
            assert g[i] == pytest.approx(num, abs=1e-6)


class TestOptimizers:
    def _quadratic_param(self):
        return Parameter(np.array([5.0, -3.0]))

    def test_sgd_converges_on_quadratic(self):
        p = self._quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            p.zero_grad()
            p.grad += 2 * p.data
            opt.step()
        assert np.abs(p.data).max() < 1e-3

    def test_sgd_momentum_accelerates(self):
        losses = {}
        for mom in (0.0, 0.9):
            p = self._quadratic_param()
            opt = SGD([p], lr=0.01, momentum=mom)
            for _ in range(50):
                p.zero_grad()
                p.grad += 2 * p.data
                opt.step()
            losses[mom] = float(np.sum(p.data**2))
        assert losses[0.9] < losses[0.0]

    def test_adam_converges(self):
        p = self._quadratic_param()
        opt = Adam([p], lr=0.3)
        for _ in range(300):
            p.zero_grad()
            p.grad += 2 * p.data
            opt.step()
        assert np.abs(p.data).max() < 1e-3

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.zero_grad()
        opt.step()
        assert p.data[0] < 1.0

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)


class TestPruning:
    def test_sparsity_after_prune(self):
        model = Sequential(Dense(20, 20), ReLU(), Dense(20, 5))
        magnitude_prune(model, 0.5)
        assert sparsity(model) >= 0.4  # biases excluded from pruning

    def test_masks_reapply(self):
        model = Sequential(Dense(10, 10))
        masks = magnitude_prune(model, 0.5)
        model.parameters()[0].data += 1.0  # densify
        apply_masks(model, masks)
        assert sparsity(model) > 0.3

    def test_keeps_largest_weights(self):
        model = Sequential(Dense(4, 4))
        w = model.parameters()[0]
        w.data = np.arange(16.0).reshape(4, 4) + 1.0
        magnitude_prune(model, 0.5)
        assert w.data[3, 3] != 0.0
        assert w.data[0, 0] == 0.0

    def test_biases_untouched(self):
        model = Sequential(Dense(8, 8))
        model.parameters()[1].data[:] = 0.001
        magnitude_prune(model, 0.9)
        assert np.all(model.parameters()[1].data == 0.001)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            magnitude_prune(Sequential(Dense(4, 4)), 1.0)

    def test_channel_importance_ranks(self):
        p = Parameter(np.stack([np.zeros((3, 3)), np.ones((3, 3))]))
        scores = channel_importance(p)
        assert scores[1] > scores[0]


class TestQuantization:
    def test_round_trip_error_small_8bit(self):
        x = RNG.standard_normal((16, 16))
        assert quantization_error(x, QuantizationSpec(8)) < 0.01

    def test_lower_bits_more_error(self):
        x = RNG.standard_normal((32, 32))
        e4 = quantization_error(x, QuantizationSpec(4, per_channel=False))
        e8 = quantization_error(x, QuantizationSpec(8, per_channel=False))
        assert e4 > e8

    def test_levels_are_integers(self):
        q, scale = quantize_array(RNG.standard_normal((4, 4)), QuantizationSpec(8))
        assert np.allclose(q, np.round(q))
        assert np.all(np.abs(q) <= 128)

    def test_per_channel_scales(self):
        x = np.stack([np.ones(8) * 0.01, np.ones(8) * 100.0])
        q, scale = quantize_array(x, QuantizationSpec(8, per_channel=True))
        back = dequantize_array(q, scale)
        assert np.allclose(back, x, rtol=0.02)

    def test_quantize_module_reports(self):
        model = Sequential(Dense(8, 8), ReLU(), Dense(8, 2))
        report = quantize_module(model, QuantizationSpec(8))
        assert len(report) == 2  # two weight matrices, biases skipped
        assert all(0 <= v < 0.05 for v in report.values())

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantizationSpec(1)
