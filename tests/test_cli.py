"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["generate-dataset"])
        assert args.n_samples == 100
        assert args.snr_low == -30.0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestGenerateDataset(object):
    def test_writes_npz(self, tmp_path, capsys):
        out = tmp_path / "clips.npz"
        code = main(
            [
                "generate-dataset",
                "--n-samples",
                "6",
                "--duration",
                "0.5",
                "--fs",
                "4000",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        data = np.load(out)
        assert data["waveforms"].shape == (6, 2000)
        assert data["labels"].shape == (6,)
        assert "wrote 6 clips" in capsys.readouterr().out


class TestAssessArray:
    def test_uca_report(self, capsys):
        code = main(
            ["assess-array", "--topology", "uca", "--n-mics", "4", "--size", "0.15",
             "--n-directions", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "aperture" in out
        assert "mean error" in out

    def test_ula_reports_inf_condition(self, capsys):
        code = main(
            ["assess-array", "--topology", "ula", "--n-mics", "3", "--size", "0.1",
             "--n-directions", "4"]
        )
        assert code == 0
        assert "inf" in capsys.readouterr().out


class TestCodesign:
    def test_runs_and_reports(self, capsys):
        code = main(
            ["codesign", "--base-channels", "8", "--n-blocks", "2", "--error-budget", "1.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "(baseline)" in out
