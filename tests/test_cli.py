"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["generate-dataset"])
        assert args.n_samples == 100
        assert args.snr_low == -30.0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestGenerateDataset(object):
    def test_writes_npz(self, tmp_path, capsys):
        out = tmp_path / "clips.npz"
        code = main(
            [
                "generate-dataset",
                "--n-samples",
                "6",
                "--duration",
                "0.5",
                "--fs",
                "4000",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        data = np.load(out)
        assert data["waveforms"].shape == (6, 2000)
        assert data["labels"].shape == (6,)
        assert "wrote 6 clips" in capsys.readouterr().out


class TestGenerateFeatures:
    def test_features_stored(self, tmp_path, capsys):
        out = tmp_path / "clips.npz"
        code = main(
            [
                "generate-dataset",
                "--n-samples", "4",
                "--duration", "0.5",
                "--fs", "4000",
                "--features",
                "--feature-mels", "16",
                "--feature-frames", "16",
                "--out", str(out),
            ]
        )
        assert code == 0
        data = np.load(out)
        assert data["features"].shape == (4, 1, 16, 16)
        assert "features: 16 mels x 16 frames" in capsys.readouterr().out


class TestProcess:
    def test_demo_scene(self, capsys):
        code = main(["process", "--duration", "0.5", "--fs", "8000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine          : batched" in out
        assert "frames" in out

    def test_npz_input(self, tmp_path, capsys):
        path = tmp_path / "rec.npz"
        rng = np.random.default_rng(0)
        np.savez(path, signals=rng.standard_normal((4, 8000)), fs=16000.0)
        code = main(["process", "--input", str(path), "--compare-streaming"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rec.npz" in out
        assert "streaming" in out

    def test_npz_missing_signals(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, waveforms=np.zeros((2, 100)))
        assert main(["process", "--input", str(path)]) == 1


class TestFleet:
    def test_corridor_demo(self, capsys):
        code = main(
            ["fleet", "--n-nodes", "2", "--spacing", "12", "--duration", "0.6",
             "--fs", "4000", "--n-azimuth", "36"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "corridor          : 2 nodes" in out
        assert "node health" in out
        assert "fleet wall time" in out

    def test_rejects_single_node(self, capsys):
        assert main(["fleet", "--n-nodes", "1"]) == 1

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.n_nodes == 3
        assert args.detector == "oracle"
        assert not args.threads


class TestFleetJson:
    def test_json_requires_stream(self, capsys):
        assert main(["fleet", "--json"]) == 1
        assert "--json requires --stream" in capsys.readouterr().err

    def test_stream_json_document(self, capsys):
        import json

        code = main(
            ["fleet", "--stream", "--n-nodes", "2", "--spacing", "12",
             "--duration", "0.5", "--n-azimuth", "36", "--workers", "0",
             "--json"]
        )
        assert code == 0
        out = capsys.readouterr().out
        doc = json.loads(out)  # the ONLY stdout is one JSON document
        assert doc["engine"] == "parallel"
        assert doc["n_tracks"] > 0
        assert {"p95_ms", "deadline_ms"} <= set(doc["hop_latency"])
        assert "detect_to_update" in doc
        assert len(doc["nodes"]) == 2
        for node in doc["nodes"]:
            assert {"node_id", "realtime", "n_overruns"} <= set(node)

    def test_tap_misses_reported_with_streamed_mlat(self, capsys):
        import json

        code = main(
            ["fleet", "--stream", "--n-nodes", "2", "--spacing", "12",
             "--duration", "0.5", "--n-azimuth", "36", "--workers", "0",
             "--multilaterate", "--tap-window", "1.0", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        for node in doc["nodes"]:
            assert node["n_tap_misses"] == 0  # sized window: no evictions
        code = main(
            ["fleet", "--stream", "--n-nodes", "2", "--spacing", "12",
             "--duration", "0.5", "--n-azimuth", "36", "--workers", "0",
             "--multilaterate", "--tap-window", "1.0"]
        )
        assert code == 0
        assert "tap misses        : 0 evicted read(s)" in capsys.readouterr().out

    def test_full_physics_incremental_stream(self, capsys):
        import json

        code = main(
            ["fleet", "--stream", "--incremental", "--n-nodes", "2",
             "--spacing", "12", "--duration", "0.5", "--n-azimuth", "36",
             "--surface", "dense_asphalt", "--air", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_tracks"] > 0
        code = main(
            ["fleet", "--stream", "--incremental", "--n-nodes", "2",
             "--spacing", "12", "--duration", "0.5", "--n-azimuth", "36",
             "--surface", "dense_asphalt", "--air"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "physics           : surface dense_asphalt, air absorption on" in out


class TestCity:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["city"])
        assert args.corridors == 3
        assert args.workers == 1
        assert not args.json

    def test_default_scenario_run(self, capsys):
        code = main(
            ["city", "--corridors", "2", "--duration", "0.4", "--n-nodes", "2",
             "--workers", "0", "--stagger", "1", "--status-every", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "city sessions     : 2" in out
        assert "corridor0 joined" in out
        assert "corridor1 joined" in out
        assert "corridor0 left" in out
        assert "detect→update" in out

    def test_snapshot_trail_and_no_steal(self, tmp_path, capsys):
        import json

        trail = tmp_path / "trail.jsonl"
        code = main(
            ["city", "--corridors", "2", "--duration", "0.3", "--n-nodes", "2",
             "--workers", "0", "--no-steal", "--snapshot-out", str(trail),
             "--snapshot-every", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shard stealing off" in out
        assert "snapshots" in out and "trail.jsonl" in out
        rows = [json.loads(line) for line in trail.read_text().splitlines()]
        assert rows
        assert all({"step", "n_sessions", "corridors"} <= set(r) for r in rows)
        assert rows[-1]["n_left"] == 2

    def test_snapshot_every_requires_out(self, capsys):
        code = main(
            ["city", "--corridors", "1", "--workers", "0", "--snapshot-every", "2"]
        )
        assert code == 1
        assert "--snapshot-out" in capsys.readouterr().err

    def test_scenario_file_and_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "city.json"
        path.write_text(json.dumps({
            "seed": 4,
            "corridors": [
                {"corridor_id": "north", "n_nodes": 2, "duration_s": 0.4},
                {"corridor_id": "south", "n_nodes": 2, "duration_s": 0.4,
                 "join_step": 1},
            ],
        }))
        code = main(["city", "--scenario", str(path), "--workers", "0", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_sessions"] == 2
        assert {c["corridor_id"] for c in doc["corridors"]} == {"north", "south"}
        assert doc["n_left"] == 2


class TestAssessArray:
    def test_uca_report(self, capsys):
        code = main(
            ["assess-array", "--topology", "uca", "--n-mics", "4", "--size", "0.15",
             "--n-directions", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "aperture" in out
        assert "mean error" in out

    def test_ula_reports_inf_condition(self, capsys):
        code = main(
            ["assess-array", "--topology", "ula", "--n-mics", "3", "--size", "0.1",
             "--n-directions", "4"]
        )
        assert code == 0
        assert "inf" in capsys.readouterr().out


class TestCodesign:
    def test_runs_and_reports(self, capsys):
        code = main(
            ["codesign", "--base-channels", "8", "--n-blocks", "2", "--error-budget", "1.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "(baseline)" in out
