"""Tests for the streaming front-end processors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp import StreamingFramer, StreamingLogMel, StreamingStft
from repro.dsp.stft import frame_signal, get_window

RNG = np.random.default_rng(0)


class TestStreamingFramer:
    def test_matches_offline_framing(self):
        x = RNG.standard_normal(1000)
        framer = StreamingFramer(64, 32)
        frames = []
        for start in range(0, 1000, 100):
            frames.extend(framer.push(x[start : start + 100]))
        offline = frame_signal(x, 64, 32, pad=False)
        assert len(frames) == offline.shape[0]
        for a, b in zip(frames, offline):
            assert np.allclose(a, b)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=97), min_size=3, max_size=15))
    def test_chunking_invariance(self, chunk_sizes):
        """Any chunking of the stream yields exactly the same frames."""
        total = sum(chunk_sizes)
        x = np.random.default_rng(total).standard_normal(total)
        framer = StreamingFramer(32, 16)
        frames = []
        pos = 0
        for size in chunk_sizes:
            frames.extend(framer.push(x[pos : pos + size]))
            pos += size
        offline = frame_signal(x, 32, 16, pad=False)
        assert len(frames) == offline.shape[0]
        for a, b in zip(frames, offline):
            assert np.allclose(a, b)

    def test_reset(self):
        framer = StreamingFramer(16, 8)
        framer.push(np.ones(10))
        framer.reset()
        assert framer.buffered == 0

    def test_many_small_chunks_ring_regression(self):
        """Sample-at-a-time ingest of a long stream: correct frames and
        O(frame) memory — the ring must never grow with stream length (the
        old implementation concatenated the whole buffer per push)."""
        n = 20000
        x = np.random.default_rng(42).standard_normal(n)
        framer = StreamingFramer(64, 32)
        frames = []
        pos = 0
        rng = np.random.default_rng(7)
        while pos < n:
            size = int(rng.integers(1, 4))
            frames.extend(framer.push(x[pos : pos + size]))
            pos += size
        offline = frame_signal(x, 64, 32, pad=False)
        assert len(frames) == offline.shape[0]
        assert np.allclose(np.stack(frames), offline)
        # O(frame + max_chunk) memory: 20k samples streamed, ring stays small.
        assert framer.capacity <= 4 * 64

    def test_large_chunk_grows_then_wraps_correctly(self):
        """A chunk bigger than the ring forces a grow + linearize; later
        pushes must still wrap and emit exact frames."""
        x = np.random.default_rng(3).standard_normal(5000)
        framer = StreamingFramer(128, 64)
        frames = list(framer.push(x[:2000]))  # >> initial 256-sample ring
        for start in range(2000, 5000, 37):
            frames.extend(framer.push(x[start : start + 37]))
        offline = frame_signal(x, 128, 64, pad=False)
        assert len(frames) == offline.shape[0]
        assert np.allclose(np.stack(frames), offline)

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingFramer(16, 0)
        with pytest.raises(ValueError):
            StreamingFramer(16, 8).push(np.ones((2, 2)))


class TestStreamingStft:
    def test_matches_windowed_fft(self):
        x = RNG.standard_normal(512)
        s = StreamingStft(256, 128)
        specs = s.push(x)
        win = get_window("hann", 256)
        assert len(specs) == 3
        assert np.allclose(specs[0], np.fft.rfft(x[:256] * win))
        assert np.allclose(specs[1], np.fft.rfft(x[128:384] * win))

    def test_nfft_validation(self):
        with pytest.raises(ValueError):
            StreamingStft(100, 50)


class TestStreamingLogMel:
    def test_vector_shape(self):
        fe = StreamingLogMel(16000.0, 512, 256, n_mels=24)
        vecs = fe.push(RNG.standard_normal(1024))
        assert len(vecs) == 3
        assert vecs[0].shape == (24,)

    def test_matches_pipeline_features(self):
        """The streaming front-end reproduces the pipeline's detect features."""
        from repro.core import AcousticPerceptionPipeline, PipelineConfig

        cfg = PipelineConfig()
        mics = np.array([[0.1, 0, 1.0], [-0.1, 0, 1.0]])
        pipeline = AcousticPerceptionPipeline(mics, cfg)
        frame = RNG.standard_normal(cfg.frame_length)
        spectrum = np.abs(np.fft.rfft(frame * pipeline.window)) ** 2
        mel = pipeline.mel_fb @ spectrum
        expected = np.log(np.maximum(mel, 1e-10))
        expected = (expected - expected.mean()) / expected.std()

        fe = StreamingLogMel(cfg.fs, cfg.frame_length, cfg.hop_length, n_mels=cfg.n_mels)
        vec = fe.push(frame)[0]
        assert np.allclose(vec, expected)

    def test_standardized(self):
        fe = StreamingLogMel(8000.0, 256, 128, n_mels=16)
        for vec in fe.push(RNG.standard_normal(600)):
            assert abs(vec.mean()) < 1e-9
            assert vec.std() == pytest.approx(1.0, abs=1e-6)

    def test_invalid_fs(self):
        with pytest.raises(ValueError):
            StreamingLogMel(0.0, 256, 128)
