"""Incremental corridor rendering: hop slices on demand, bit-identical to
the offline whole-scene render."""

import numpy as np
import pytest

from repro.acoustics.trajectory import LinearTrajectory
from repro.core import PipelineConfig
from repro.fleet import (
    CorridorBlockRenderer,
    CorridorScene,
    CorridorStream,
    FleetScheduler,
    OracleDetector,
    Vehicle,
    place_corridor_nodes,
    synthesize_corridor,
)

FS = 8000.0


def make_scene(n_nodes=3, n_samples=8000, two_vehicles=True, seed=7):
    rng = np.random.default_rng(seed)
    sig1 = np.sin(2 * np.pi * 700 * np.arange(n_samples) / FS) * 0.5
    vehicles = [
        Vehicle(
            "siren_wail",
            LinearTrajectory((-40.0, 5.0, 1.5), (40.0, 5.0, 1.5), speed=20.0),
            sig1,
        )
    ]
    if two_vehicles:
        vehicles.append(
            Vehicle(
                "siren_yelp",
                LinearTrajectory((30.0, -5.0, 1.0), (-30.0, -5.0, 1.0), speed=15.0),
                rng.standard_normal(n_samples - 1500) * 0.2,
                gain=0.7,
            )
        )
    return CorridorScene(vehicles, place_corridor_nodes(n_nodes, 25.0))


class TestCorridorBlockRenderer:
    @pytest.mark.parametrize("interp", ["linear", "lagrange"])
    def test_bit_identical_to_offline_render(self, interp):
        scene = make_scene()
        offline = synthesize_corridor(scene, FS, interpolation=interp)
        rend = CorridorBlockRenderer(scene, FS, interpolation=interp)
        for nid, ref in offline.recordings.items():
            blocks = []
            while rend.cursor(nid) < rend.capture_samples_of(nid):
                blocks.append(rend.render_next(nid, 256))
            assert np.array_equal(np.concatenate(blocks, axis=1), ref)

    def test_noise_and_truncation_match_offline(self):
        scene = make_scene()
        kw = dict(noise_std=0.01, capture_samples={"node2": 6500})
        offline = synthesize_corridor(scene, FS, rng=np.random.default_rng(42), **kw)
        rend = CorridorBlockRenderer(scene, FS, rng=np.random.default_rng(42), **kw)
        # Ragged block sizes must not matter: any slicing concatenates to
        # the same samples.
        sizes = [1, 7, 250, 256, 2048, 10_000]
        for nid, ref in offline.recordings.items():
            blocks, k = [], 0
            while rend.cursor(nid) < rend.capture_samples_of(nid):
                blocks.append(rend.render_next(nid, sizes[k % len(sizes)]))
                k += 1
            got = np.concatenate(blocks, axis=1)
            assert got.shape == ref.shape
            assert np.array_equal(got, ref)

    def test_short_final_block_and_exhaustion(self):
        scene = make_scene(n_samples=1000, two_vehicles=False)
        rend = CorridorBlockRenderer(scene, FS)
        assert rend.render_next("node0", 768).shape == (4, 768)
        assert rend.render_next("node0", 768).shape == (4, 232)  # short tail
        with pytest.raises(ValueError, match="exhausted"):
            rend.render_next("node0", 1)
        with pytest.raises(ValueError):
            rend.render_next("node1", 0)

    @pytest.mark.parametrize("interp", ["linear", "lagrange", "sinc"])
    def test_full_physics_bit_identical_to_offline(self, interp):
        """Surface reflections + air absorption stream bit-exact: the same
        stateful FIR stages run whole-signal offline and sliced here."""
        scene = make_scene(n_nodes=2, n_samples=10_000)
        scene.surface = "dense_asphalt"
        offline = synthesize_corridor(scene, FS, interpolation=interp, air_absorption=True)
        rend = CorridorBlockRenderer(scene, FS, interpolation=interp, air_absorption=True)
        sizes = [256, 1, 2048, 709, 256]
        for nid, ref in offline.recordings.items():
            blocks, k = [], 0
            while rend.cursor(nid) < rend.capture_samples_of(nid):
                blocks.append(rend.render_next(nid, sizes[k % len(sizes)]))
                k += 1
            got = np.concatenate(blocks, axis=1)
            assert got.shape == ref.shape
            assert np.array_equal(got, ref)

    @pytest.mark.parametrize(
        "surface,air", [("dense_asphalt", False), (None, True)]
    )
    def test_single_stage_physics_bit_identical(self, surface, air):
        """Reflection-only and absorption-only configurations stream too."""
        scene = make_scene(n_nodes=2, two_vehicles=False)
        scene.surface = surface
        kw = dict(air_absorption=air, noise_std=0.01)
        offline = synthesize_corridor(scene, FS, rng=np.random.default_rng(9), **kw)
        rend = CorridorBlockRenderer(scene, FS, rng=np.random.default_rng(9), **kw)
        for nid, ref in offline.recordings.items():
            blocks = []
            while rend.cursor(nid) < rend.capture_samples_of(nid):
                blocks.append(rend.render_next(nid, 256))
            assert np.array_equal(np.concatenate(blocks, axis=1), ref)

    def test_full_physics_session_tracks_identical(self):
        """A live session over the full-physics incremental render fuses the
        exact tracks of the offline-rendered replay session."""
        scene = make_scene(two_vehicles=False)
        scene.surface = "dense_asphalt"
        cfg = PipelineConfig(fs=FS, localizer="srp_fast", n_azimuth=36, n_elevation=2)
        sch = FleetScheduler(
            scene.nodes, cfg, detector=OracleDetector("siren_wail"), n_shards=2
        )

        def run(incremental):
            stream = CorridorStream(
                scene,
                FS,
                chunk_samples=cfg.hop_length,
                rng=np.random.default_rng(3),
                incremental=incremental,
                air_absorption=True,
            )
            session = sch.stream(stream.sources(), hop_batch=8)
            while not session.done:
                session.step()
            return session.finalize()

        ref, inc = run(False), run(True)
        assert len(ref.tracks) == len(inc.tracks) > 0
        for ta, tb in zip(ref.tracks, inc.tracks):
            assert np.array_equal(ta.frames(), tb.frames())
            assert np.array_equal(ta.positions(), tb.positions())
        sch.close()

    def test_validation(self):
        scene = make_scene()
        with pytest.raises(ValueError):
            CorridorBlockRenderer(scene, 0.0)
        with pytest.raises(ValueError, match="capture_samples"):
            CorridorBlockRenderer(scene, FS, capture_samples={"node0": 0})

    def test_below_road_plane_raises_at_offending_block(self):
        scene = CorridorScene(
            [
                Vehicle(
                    "siren_wail",
                    # Dips through z = 0 partway along the capture.
                    LinearTrajectory((-10.0, 5.0, 2.0), (10.0, 5.0, -2.0), speed=20.0),
                    np.ones(8000),
                )
            ],
            place_corridor_nodes(2, 25.0),
        )
        rend = CorridorBlockRenderer(scene, FS)
        rend.render_next("node0", 256)  # early blocks are fine
        with pytest.raises(ValueError, match="z <= 0"):
            while True:
                rend.render_next("node0", 256)


class TestIncrementalCorridorStream:
    def test_chunks_match_recording_source_exactly(self):
        """Same seed, same faults, same samples: the incremental sources are
        indistinguishable from the whole-render replay sources."""
        scene = make_scene()
        kw = dict(chunk_samples=256, drop_prob=0.15, jitter_s=0.03)
        full = CorridorStream(scene, FS, rng=np.random.default_rng(5), **kw)
        incr = CorridorStream(
            scene, FS, rng=np.random.default_rng(5), incremental=True, **kw
        )
        sa, sb = full.sources(), incr.sources()
        for nid in full.node_ids:
            assert sa[nid].n_chunks_total == sb[nid].n_chunks_total
            while True:
                ca, cb = sa[nid].next_chunk(), sb[nid].next_chunk()
                assert (ca is None) == (cb is None)
                if ca is None:
                    break
                assert ca.seq == cb.seq
                assert ca.t == cb.t
                assert ca.arrival_s == cb.arrival_s
                assert np.array_equal(ca.data, cb.data)

    def test_session_tracks_identical(self):
        """A hop-clocked fleet session fed incrementally rendered chunks
        fuses the exact tracks of the whole-render session."""
        scene = make_scene(two_vehicles=False)
        cfg = PipelineConfig(fs=FS, localizer="srp_fast", n_azimuth=36, n_elevation=2)
        sch = FleetScheduler(
            scene.nodes, cfg, detector=OracleDetector("siren_wail"), n_shards=2
        )

        def run(incremental):
            stream = CorridorStream(
                scene,
                FS,
                chunk_samples=cfg.hop_length,
                rng=np.random.default_rng(3),
                incremental=incremental,
            )
            session = sch.stream(stream.sources(), hop_batch=8)
            while not session.done:
                session.step()
            return session.finalize()

        ref, inc = run(False), run(True)
        assert len(ref.tracks) == len(inc.tracks) > 0
        for ta, tb in zip(ref.tracks, inc.tracks):
            assert np.array_equal(ta.frames(), tb.frames())
            assert np.array_equal(ta.positions(), tb.positions())
        sch.close()

    def test_incremental_requires_scene(self):
        scene = make_scene(two_vehicles=False)
        rec = synthesize_corridor(scene, FS)
        with pytest.raises(ValueError, match="needs a scene"):
            CorridorStream(rec, incremental=True)
