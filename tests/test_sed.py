"""Tests for the SED package: events, dataset generation, models, metrics."""

import numpy as np
import pytest

from repro.sed import (
    EVENT_CLASSES,
    ClipSample,
    DatasetConfig,
    EventAnnotation,
    FeatureFrontEnd,
    SedCnnConfig,
    TrainConfig,
    accuracy,
    accuracy_vs_snr,
    build_sed_cnn,
    build_sed_mlp,
    class_index,
    class_name,
    confusion_matrix,
    dataset_arrays,
    f1_per_class,
    generate_clip,
    generate_dataset,
    is_emergency,
    predict,
    train_classifier,
)


class TestEvents:
    def test_taxonomy(self):
        assert len(EVENT_CLASSES) == 5
        assert class_name(class_index("horn")) == "horn"

    def test_emergency_flags(self):
        assert is_emergency("siren_wail")
        assert is_emergency("horn")
        assert not is_emergency("background")

    def test_unknown_class_raises(self):
        with pytest.raises(ValueError):
            class_index("unknown")
        with pytest.raises(ValueError):
            class_name(99)

    def test_annotation_validation(self):
        a = EventAnnotation("horn", 0.5, 1.5)
        assert a.duration == pytest.approx(1.0)
        with pytest.raises(ValueError):
            EventAnnotation("horn", 1.0, 0.5)
        with pytest.raises(ValueError):
            EventAnnotation("unknown", 0.0, 1.0)


@pytest.fixture(scope="module")
def small_config():
    return DatasetConfig(n_samples=10, duration=0.5, fs=4000.0)


@pytest.fixture(scope="module")
def small_dataset(small_config):
    return generate_dataset(small_config, seed=1)


class TestDataset:
    def test_count_and_lengths(self, small_dataset, small_config):
        assert len(small_dataset) == 10
        for s in small_dataset:
            assert s.waveform.size == int(small_config.duration * small_config.fs)

    def test_labels_in_range(self, small_dataset):
        for s in small_dataset:
            assert 0 <= s.label < len(EVENT_CLASSES)

    def test_snr_within_range(self, small_dataset, small_config):
        lo, hi = small_config.snr_range_db
        for s in small_dataset:
            if not np.isnan(s.snr_db):
                assert lo <= s.snr_db <= hi

    def test_background_has_nan_snr(self, small_config):
        rng = np.random.default_rng(0)
        clip = generate_clip("background", small_config, rng)
        assert np.isnan(clip.snr_db)
        assert clip.label == class_index("background")

    def test_peak_normalized(self, small_dataset):
        for s in small_dataset:
            assert np.max(np.abs(s.waveform)) == pytest.approx(0.99, abs=0.01)

    def test_reproducible(self, small_config):
        a = generate_dataset(small_config, seed=5)
        b = generate_dataset(small_config, seed=5)
        assert np.allclose(a[0].waveform, b[0].waveform)
        assert a[0].label == b[0].label

    def test_dataset_arrays(self, small_dataset):
        x, y, snr = dataset_arrays(small_dataset)
        assert x.shape[0] == y.shape[0] == snr.shape[0] == 10

    def test_arrays_reject_mixed_lengths(self):
        s1 = ClipSample(np.zeros(100), 0, 0.0, 1.0)
        s2 = ClipSample(np.zeros(50), 0, 0.0, 1.0)
        with pytest.raises(ValueError, match="inconsistent"):
            dataset_arrays([s1, s2])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DatasetConfig(n_samples=0)
        with pytest.raises(ValueError):
            DatasetConfig(snr_range_db=(0.0, -10.0))
        with pytest.raises(ValueError):
            DatasetConfig(classes=("car",))

    def test_disabled_class_raises(self, small_config):
        cfg = DatasetConfig(n_samples=1, duration=0.5, fs=4000.0, classes=("horn",))
        with pytest.raises(ValueError, match="not enabled"):
            generate_clip("siren_wail", cfg, np.random.default_rng(0))


class TestModels:
    def test_cnn_forward_shape(self):
        model = build_sed_cnn(SedCnnConfig(n_classes=5, base_channels=4, n_blocks=2))
        out = model.forward(np.zeros((2, 1, 16, 16)))
        assert out.shape == (2, 5)

    def test_mlp_forward_shape(self):
        model = build_sed_mlp(40, 5)
        assert model.forward(np.zeros((3, 40))).shape == (3, 5)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SedCnnConfig(n_classes=1)
        with pytest.raises(ValueError):
            SedCnnConfig(dropout=1.5)

    def test_front_end_shapes(self):
        fe = FeatureFrontEnd("log_mel", 4000.0, n_frames=16)
        x = np.random.default_rng(0).standard_normal((3, 2000))
        maps = fe(x)
        assert maps.shape[0] == 3
        assert maps.shape[1] == 1
        assert maps.shape[3] == 16
        assert maps.shape[2] % 4 == 0

    def test_front_end_standardized(self):
        fe = FeatureFrontEnd("log_mel", 4000.0, n_frames=16)
        maps = fe(np.random.default_rng(1).standard_normal((2, 2000)))
        assert np.allclose(maps.mean(axis=(2, 3)), 0.0, atol=1e-6)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == pytest.approx(2 / 3)

    def test_confusion_matrix(self):
        c = confusion_matrix(np.array([0, 0, 1]), np.array([0, 1, 1]), 2)
        assert c[0, 0] == 1 and c[0, 1] == 1 and c[1, 1] == 1

    def test_f1_perfect(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        f1 = f1_per_class(y, y, 3)
        assert np.allclose(f1, 1.0)

    def test_f1_absent_class_zero(self):
        f1 = f1_per_class(np.array([0, 0]), np.array([0, 0]), 3)
        assert f1[1] == 0.0 and f1[2] == 0.0

    def test_accuracy_vs_snr_bins(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 1])
        snr = np.array([-25.0, -25.0, -5.0, np.nan])
        rows = accuracy_vs_snr(y_true, y_pred, snr)
        low_bin = rows[0]
        assert low_bin[3] == 2 and low_bin[2] == pytest.approx(0.5)
        # nan SNR excluded
        total = sum(r[3] for r in rows)
        assert total == 3

    def test_label_out_of_range_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 5]), np.array([0, 0]), 3)


class TestTraining:
    def test_classifier_learns_separable_features(self):
        rng = np.random.default_rng(0)
        n = 60
        x = rng.standard_normal((n, 8))
        y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
        model = build_sed_mlp(8, 2, hidden=16, rng=rng)
        history = train_classifier(
            model, x, y, config=TrainConfig(epochs=30, batch_size=16, lr=5e-3),
            x_val=x, y_val=y,
        )
        assert history["val_accuracy"][-1] >= 0.9
        assert history["loss"][-1] < history["loss"][0]

    def test_predict_shape(self):
        model = build_sed_mlp(8, 3)
        preds = predict(model, np.random.default_rng(0).standard_normal((10, 8)))
        assert preds.shape == (10,)
        assert np.all((preds >= 0) & (preds < 3))

    def test_training_validation(self):
        model = build_sed_mlp(4, 2)
        with pytest.raises(ValueError):
            train_classifier(model, np.zeros((2, 4)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
