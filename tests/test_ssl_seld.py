"""Tests for the joint SELD model and its feature stack."""

import numpy as np
import pytest

from repro.ssl import SeldConfig, SeldNet, azel_to_unit, seld_features, train_seld

RNG = np.random.default_rng(0)


class TestSeldFeatures:
    def test_channel_layout(self):
        sig = RNG.standard_normal((4, 4000))
        feats = seld_features(sig, 16000.0, n_mels=16, n_fft=256, hop=128)
        # 4 mics + 6 pairs = 10 channels
        assert feats.shape[0] == 10
        assert feats.shape[1] == 16

    def test_standardized(self):
        sig = RNG.standard_normal((3, 4000))
        feats = seld_features(sig, 16000.0, n_mels=16, n_fft=256, hop=128)
        assert np.allclose(feats.mean(axis=(1, 2)), 0.0, atol=1e-9)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            seld_features(np.zeros((2, 100)), 16000.0, n_fft=256)

    def test_single_mic_raises(self):
        with pytest.raises(ValueError):
            seld_features(np.zeros((1, 4000)), 16000.0)


class TestSeldNet:
    def test_two_heads_shapes(self):
        net = SeldNet(SeldConfig(n_classes=4, n_input_channels=6, base_channels=4))
        logits, doa = net.forward(RNG.standard_normal((3, 6, 8, 8)))
        assert logits.shape == (3, 4)
        assert doa.shape == (3, 3)

    def test_predict_normalizes_doa(self):
        net = SeldNet(SeldConfig(n_input_channels=6, base_channels=4))
        _, _, doa = net.predict(RNG.standard_normal((2, 6, 8, 8)))
        assert np.allclose(np.linalg.norm(doa, axis=1), 1.0)

    def test_channel_mismatch_raises(self):
        net = SeldNet(SeldConfig(n_input_channels=6))
        with pytest.raises(ValueError):
            net.forward(RNG.standard_normal((1, 4, 8, 8)))

    def test_joint_training_improves_both(self):
        rng = np.random.default_rng(1)
        n = 32
        x = 0.1 * rng.standard_normal((n, 6, 8, 8))
        y_class = np.zeros(n, dtype=np.int64)
        y_doa = np.zeros((n, 3))
        for i in range(n):
            cls = i % 2
            az = 0.5 if cls == 0 else -2.0
            y_class[i] = cls
            y_doa[i] = azel_to_unit(az, 0.0)
            # Plant class/DOA evidence in separate channels.
            x[i, cls] += 1.5
            x[i, 4 + cls, :, :] += 1.0
        net = SeldNet(SeldConfig(n_classes=2, n_input_channels=6, base_channels=6),
                      rng=np.random.default_rng(2))
        history = train_seld(net, x, y_class, y_doa, epochs=25, lr=3e-3, batch_size=8)
        assert history["class_loss"][-1] < history["class_loss"][0]
        assert history["doa_loss"][-1] < history["doa_loss"][0]
        pred_class, _, pred_doa = net.predict(x)
        acc = float(np.mean(pred_class == y_class))
        assert acc >= 0.9
        cos = np.sum(pred_doa * y_doa, axis=1)
        assert float(np.mean(cos)) > 0.7

    def test_train_validation(self):
        net = SeldNet(SeldConfig(n_input_channels=4))
        with pytest.raises(ValueError):
            train_seld(net, np.zeros((2, 4, 8, 8)), np.zeros(2, dtype=int), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            SeldConfig(n_classes=1)
