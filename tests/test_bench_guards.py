"""The bench guard evaluators must fail loudly on degenerate rows.

``--bench-min-speedup`` / ``--bench-max-p95`` exist to stop regressions
from shipping, so the one way they must never behave is "broken bench →
guard passes".  NaN is exactly that trap: ``nan < floor`` and
``nan > ceiling`` are both False, so a bench whose timing collapsed (or
whose latency trail was empty, making ``percentile_ms([]) = nan``) used
to sail through both guards.  These tests pin the fixed behaviour.

The benchmarks directory is not a package — its ``conftest.py`` is
loaded by pytest path magic — so the guard functions are imported here
by file path.
"""

import importlib.util
from pathlib import Path

import pytest

_CONFTEST = Path(__file__).resolve().parents[1] / "benchmarks" / "conftest.py"
_spec = importlib.util.spec_from_file_location("bench_conftest", _CONFTEST)
bench_conftest = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_conftest)

min_speedup_failures = bench_conftest.min_speedup_failures
max_p95_failures = bench_conftest.max_p95_failures


def row(bench, speedup=1.0, **extra):
    r = {"bench": bench, "wall_ms": 100.0, "speedup": speedup}
    r.update(extra)
    return r


class TestMinSpeedupGuard:
    def test_passing_and_failing_rows(self):
        rows = [row("fast", speedup=6.2), row("slow", speedup=1.4)]
        assert min_speedup_failures(["fast=5.0"], rows) == []
        (msg,) = min_speedup_failures(["slow=2.0"], rows)
        assert "slow" in msg and "regressed" in msg

    def test_worst_row_governs(self):
        rows = [row("b", speedup=9.0), row("b", speedup=1.1)]
        (msg,) = min_speedup_failures(["b=2.0"], rows)
        assert "1.10x" in msg

    def test_missing_bench_fails(self):
        (msg,) = min_speedup_failures(["ghost=1.0"], [row("other")])
        assert "no recorded row" in msg

    def test_malformed_spec_fails(self):
        for spec in ["nofloor", "=3.0", "b=fast"]:
            (msg,) = min_speedup_failures([spec], [row("b")])
            assert "malformed" in msg

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_speedup_fails_not_passes(self, bad):
        """The regression this guards: NaN compares False against any
        floor, so a degenerate timing used to *pass* the guard."""
        rows = [row("b", speedup=bad)]
        (msg,) = min_speedup_failures(["b=0.0001"], rows)
        assert "non-finite" in msg


class TestMaxP95Guard:
    def test_passing_and_failing_rows(self):
        rows = [row("lat", p95_ms=22.0)]
        assert max_p95_failures(["lat=32"], rows) == []
        (msg,) = max_p95_failures(["lat=10"], rows)
        assert "missed its deadline" in msg

    def test_row_without_p95_field_fails(self):
        (msg,) = max_p95_failures(["b=32"], [row("b")])
        assert "no p95_ms" in msg

    def test_missing_bench_fails(self):
        (msg,) = max_p95_failures(["ghost=32"], [row("b", p95_ms=1.0)])
        assert "no recorded row" in msg

    def test_malformed_spec_fails(self):
        (msg,) = max_p95_failures(["b=ms"], [row("b", p95_ms=1.0)])
        assert "malformed" in msg

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_p95_fails_not_passes(self, bad):
        """An update-less run records ``percentile_ms([]) = nan``; that
        must read as "the bench is broken", never as "under the ceiling"."""
        rows = [row("b", p95_ms=bad)]
        (msg,) = max_p95_failures(["b=1e9"], rows)
        assert "non-finite" in msg

    def test_guards_evaluate_independently(self):
        rows = [row("a", speedup=float("nan")), row("b", p95_ms=50.0)]
        speed = min_speedup_failures(["a=1.0"], rows)
        p95 = max_p95_failures(["b=10"], rows)
        assert len(speed) == 1 and len(p95) == 1
