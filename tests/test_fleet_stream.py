"""Streaming fleet runtime tests: the live session must reproduce the
offline run.

The contract of :class:`repro.fleet.FleetStream` is that, on the same
rendered corridor (no simulated driver faults), the hop-clocked session
produces (i) per-node :class:`FrameResult` streams numerically equivalent to
:meth:`FleetScheduler.run` and (ii) fused corridor tracks *identical* to
:func:`fuse_fleet` on the offline results — the same association decisions
(track count, labels, hits, contributing nodes, confirmation frames) and
bit-close filter states — for any hop batch and chunk size.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustics.trajectory import LinearTrajectory
from repro.core import PipelineConfig
from repro.fleet import (
    CorridorScene,
    CorridorStream,
    FleetScheduler,
    OracleDetector,
    Vehicle,
    fleet_report,
    format_track_update,
    fuse_fleet,
    place_corridor_nodes,
    summarize_updates,
    synthesize_corridor,
)
from repro.signals import synthesize_siren
from repro.ssl.refine import RefineState

FS = 8000.0


def corridor(n_nodes=3, duration=1.2, n_vehicles=2, capture_samples=None):
    rng = np.random.default_rng(11)
    vehicles = [
        Vehicle(
            "siren_wail",
            LinearTrajectory([-25.0, 8.0, 0.8], [25.0, 8.0, 0.8], 15.0),
            synthesize_siren("wail", duration, FS, rng=rng),
        )
    ]
    if n_vehicles > 1:
        vehicles.append(
            Vehicle(
                "siren_yelp",
                LinearTrajectory([25.0, 13.0, 0.8], [-25.0, 13.0, 0.8], 12.0),
                synthesize_siren("yelp", duration, FS, rng=rng),
            )
        )
    nodes = place_corridor_nodes(n_nodes, 18.0)
    recording = synthesize_corridor(
        CorridorScene(vehicles, nodes), FS, capture_samples=capture_samples
    )
    return nodes, recording


def config(n_azimuth=36):
    return PipelineConfig(fs=FS, n_azimuth=n_azimuth, n_elevation=2)


def assert_frame_streams_equal(offline, live):
    assert offline.keys() == live.keys()
    for nid in offline:
        a, b = offline[nid], live[nid]
        assert len(a) == len(b)
        for r1, r2 in zip(a, b):
            assert r1.frame_index == r2.frame_index
            assert r1.label == r2.label
            assert r1.detected == r2.detected
            assert np.isclose(r1.confidence, r2.confidence)
            for u, v in ((r1.azimuth, r2.azimuth), (r1.elevation, r2.elevation)):
                assert (np.isnan(u) and np.isnan(v)) or np.isclose(u, v)


def assert_tracks_identical(offline_tracks, live_tracks):
    """Same association decisions, bit-close states."""
    assert len(offline_tracks) == len(live_tracks)
    for t1, t2 in zip(offline_tracks, live_tracks):
        assert t1.track_id == t2.track_id
        assert t1.label == t2.label
        assert t1.hits == t2.hits
        assert t1.nodes == t2.nodes
        assert t1.confirmed == t2.confirmed
        assert t1.confirmed_frame == t2.confirmed_frame
        assert t1.n_triangulated == t2.n_triangulated
        assert t1.n_multilaterated == t2.n_multilaterated
        assert np.array_equal(t1.frames(), t2.frames())
        assert np.allclose(t1.positions(), t2.positions(), rtol=1e-9, atol=1e-9)


class TestStreamingOfflineEquivalence:
    @settings(max_examples=4, deadline=None)
    @given(
        hop_batch=st.integers(min_value=1, max_value=24),
        chunk_samples=st.sampled_from([128, 256, 512, 1000]),
    )
    def test_fused_tracks_identical_any_schedule(self, hop_batch, chunk_samples):
        """Property: the delivery schedule (chunk size, hop batch) never
        changes what the corridor concludes."""
        nodes, recording = corridor()
        cfg = config()
        detector = OracleDetector("siren_wail")

        offline = FleetScheduler(nodes, cfg, detector=detector, n_shards=2).run(recording)
        offline_tracks = fuse_fleet(
            offline.node_results, nodes, frame_period=cfg.frame_period_s
        )

        live_sched = FleetScheduler(nodes, cfg, detector=detector, n_shards=2)
        stream = CorridorStream(recording, chunk_samples=chunk_samples)
        result = live_sched.stream(stream.sources(), hop_batch=hop_batch).run()

        assert_frame_streams_equal(offline.node_results, result.node_results)
        assert_tracks_identical(offline_tracks, result.tracks)

    def test_ragged_captures(self):
        """A node with a shorter capture window ends early; the stream must
        keep fusing the surviving nodes to the end, like the offline pass."""
        short = int(0.8 * FS)
        nodes, recording = corridor(capture_samples={"node2": short})
        cfg = config()
        detector = OracleDetector("siren_wail")

        offline = FleetScheduler(nodes, cfg, detector=detector, n_shards=1).run(recording)
        offline_tracks = fuse_fleet(
            offline.node_results, nodes, frame_period=cfg.frame_period_s
        )

        live_sched = FleetScheduler(nodes, cfg, detector=detector, n_shards=1)
        stream = CorridorStream(recording, chunk_samples=cfg.hop_length)
        result = live_sched.stream(stream.sources(), hop_batch=8).run()

        assert len(result.node_results["node2"]) < len(result.node_results["node0"])
        assert_frame_streams_equal(offline.node_results, result.node_results)
        assert_tracks_identical(offline_tracks, result.tracks)

    def test_multilateration_parity(self):
        """The wide-baseline TDOA upgrade fires identically in both runtimes
        when the stream session is given the recordings."""
        nodes, recording = corridor(duration=1.0, n_vehicles=1)
        cfg = config()
        detector = OracleDetector("siren_wail")

        offline = FleetScheduler(nodes, cfg, detector=detector, n_shards=1).run(recording)
        offline_tracks = fuse_fleet(
            offline.node_results,
            nodes,
            frame_period=cfg.frame_period_s,
            recordings=recording.recordings,
            fs=FS,
            hop_length=cfg.hop_length,
        )

        live_sched = FleetScheduler(nodes, cfg, detector=detector, n_shards=1)
        stream = CorridorStream(recording, chunk_samples=cfg.hop_length)
        result = live_sched.stream(
            stream.sources(), hop_batch=8, recordings=recording.recordings
        ).run()
        assert_tracks_identical(offline_tracks, result.tracks)


class TestFleetStreamSession:
    def test_step_api_and_accounting(self):
        nodes, recording = corridor(duration=1.0)
        cfg = config(n_azimuth=24)
        sched = FleetScheduler(nodes, cfg, detector=OracleDetector("siren_wail"))
        session = sched.stream(
            CorridorStream(recording, chunk_samples=cfg.hop_length).sources(),
            hop_batch=8,
        )
        steps = 0
        while not session.done:
            out = session.step()
            steps += 1
            assert out.fused_upto >= 0
            assert steps < 1000  # terminates
        result = session.finalize()
        assert result.n_steps == steps
        expected_frames = 1 + (recording.recordings["node0"].shape[1] - cfg.frame_length) // cfg.hop_length
        for nid, stats in result.node_stats.items():
            assert stats.n_frames == expected_frames
        assert result.hop_latency.deadline_s == pytest.approx(cfg.frame_period_s)
        assert all(s.n_dropped_chunks == 0 for s in result.ingest.values())
        # Every frame got fused and the update feed saw confirmations.
        counts = summarize_updates(result.updates)
        assert counts["confirmed"] >= 1
        # The offline-shaped view feeds the standard corridor report.
        report = fleet_report(
            result.tracks, result.as_run_result(), frame_period=cfg.frame_period_s
        )
        assert report.n_vehicles >= 1

    def test_live_updates_feed_renders(self):
        nodes, recording = corridor(duration=0.8, n_vehicles=1)
        cfg = config(n_azimuth=24)
        sched = FleetScheduler(nodes, cfg, detector=OracleDetector("siren_wail"))
        result = sched.stream(
            CorridorStream(recording, chunk_samples=cfg.hop_length).sources(),
            hop_batch=4,
        ).run()
        assert result.updates, "a detected corridor must emit track updates"
        line = format_track_update(result.updates[0], frame_period=cfg.frame_period_s)
        assert "track" in line and "km/h" in line
        kinds = {u.kind for u in result.updates}
        assert kinds <= {"spawned", "confirmed", "updated", "coasted", "retired"}
        # Updates arrive in fusion-frame order.
        frames = [u.frame_index for u in result.updates]
        assert frames == sorted(frames)

    def test_dropped_chunks_accounted_and_survivable(self):
        nodes, recording = corridor(duration=1.0, n_vehicles=1)
        cfg = config(n_azimuth=24)
        sched = FleetScheduler(nodes, cfg, detector=OracleDetector("siren_wail"))
        stream = CorridorStream(
            recording,
            chunk_samples=cfg.hop_length,
            drop_prob=0.1,
            rng=np.random.default_rng(5),
        )
        result = sched.stream(stream.sources(), hop_batch=8).run()
        assert sum(s.n_dropped_chunks for s in result.ingest.values()) > 0
        # The hop grid stays aligned: full frame count despite the losses.
        expected_frames = 1 + (recording.recordings["node0"].shape[1] - cfg.frame_length) // cfg.hop_length
        assert all(s.n_frames == expected_frames for s in result.node_stats.values())

    def test_mid_run_finalize_is_a_pure_snapshot(self):
        """finalize() before any frame completes must not corrupt the
        latency monitors (no phantom 0.0 ticks in the final stats)."""
        nodes, recording = corridor(duration=0.6, n_vehicles=1)
        cfg = config(n_azimuth=24)
        sched = FleetScheduler(nodes, cfg, detector=OracleDetector("siren_wail"))
        session = sched.stream(
            CorridorStream(recording, chunk_samples=64).sources(), hop_batch=1
        )
        session.step()  # ring still filling: no node has a complete frame yet
        snapshot = session.finalize()
        assert all(s.latency.mean_s == 0.0 for s in snapshot.node_stats.values())
        result = session.run()
        for stats in result.node_stats.values():
            assert stats.latency.mean_s > 0.0
            assert stats.latency.max_s > 0.0  # no phantom zero sample

    def test_source_validation(self):
        nodes, recording = corridor(duration=0.5, n_vehicles=1)
        cfg = config(n_azimuth=24)
        sched = FleetScheduler(nodes, cfg)
        sources = CorridorStream(recording, chunk_samples=cfg.hop_length).sources()
        missing = dict(sources)
        del missing["node1"]
        with pytest.raises(ValueError, match="missing sources"):
            sched.stream(missing)
        with pytest.raises(ValueError, match="hop_batch"):
            sched.stream(sources, hop_batch=0)

    def test_corridor_stream_lazy_render_and_validation(self):
        nodes, recording = corridor(duration=0.5, n_vehicles=1)
        # Wrapping a recording does not re-render.
        stream = CorridorStream(recording, chunk_samples=256)
        assert stream.recording is recording
        assert stream.node_ids == [n.node_id for n in nodes]
        # Rendering a scene lazily produces the same corridor.
        lazy = CorridorStream(recording.scene, FS, chunk_samples=256)
        rendered = lazy.recording
        assert np.allclose(rendered.recordings["node0"], recording.recordings["node0"])
        with pytest.raises(ValueError, match="fs is required"):
            CorridorStream(recording.scene)
        with pytest.raises(ValueError, match="chunk_samples"):
            CorridorStream(recording, chunk_samples=0)


class TestRefineStateClone:
    def test_clone_is_independent(self):
        state = RefineState()
        state.anchor = (1, 2)
        state.window = np.array([3, 4, 5])
        state.n_reused = 7
        snap = state.clone()
        state.window[0] = 99
        state.anchor = (0, 0)
        assert snap.anchor == (1, 2)
        assert np.array_equal(snap.window, [3, 4, 5])
        assert snap.n_reused == 7
