"""Tests for alert policy, anomaly detection, and pipelined scheduling."""

import numpy as np
import pytest

from repro.core import AlertPolicy, PipelineConfig
from repro.core.pipeline import FrameResult
from repro.hw import RASPI4, estimate_cost, pipeline_schedule, plan_stages
from repro.sed import anomaly_scores, detect_anomaly, fit_template, synthesize_engine


def frame(i, label="siren_wail", conf=0.9, detected=True, az=0.5):
    return FrameResult(i, label, conf, detected, az, 0.0)


def quiet(i):
    return FrameResult(i, "background", 0.9, False, float("nan"), float("nan"))


class TestAlertPolicy:
    def test_raises_after_debounce(self):
        policy = AlertPolicy(on_frames=3, off_frames=5)
        assert policy.update(frame(0)) is None
        assert policy.update(frame(1)) is None
        alert = policy.update(frame(2))
        assert alert is not None and alert.kind == "raised"
        assert policy.active

    def test_single_frame_does_not_raise(self):
        policy = AlertPolicy(on_frames=3, off_frames=5)
        policy.update(frame(0))
        assert policy.update(quiet(1)) is None
        assert not policy.active

    def test_clears_after_off_debounce(self):
        policy = AlertPolicy(on_frames=2, off_frames=3)
        for i in range(2):
            policy.update(frame(i))
        assert policy.active
        results = [policy.update(quiet(2 + i)) for i in range(3)]
        assert results[-1].kind == "cleared"
        assert not policy.active

    def test_survives_short_dropouts(self):
        policy = AlertPolicy(on_frames=2, off_frames=5)
        for i in range(2):
            policy.update(frame(i))
        policy.update(quiet(2))
        policy.update(frame(3))
        assert policy.active

    def test_approaching_trend(self):
        policy = AlertPolicy(on_frames=2, off_frames=5, trend_window=10, trend_threshold=0.001)
        last = None
        for i in range(25):
            conf = 0.3 + 0.02 * i  # rising confidence = approaching
            last = policy.update(frame(i, conf=min(conf, 0.95)))
        assert last is not None and last.approaching is True

    def test_receding_trend(self):
        policy = AlertPolicy(on_frames=2, off_frames=30, trend_window=10, trend_threshold=0.001)
        last = None
        for i in range(25):
            conf = max(0.9 - 0.02 * i, 0.3)
            last = policy.update(frame(i, conf=conf))
        assert last is not None and last.approaching is False

    def test_process_returns_transitions(self):
        policy = AlertPolicy(on_frames=2, off_frames=2)
        stream = [frame(0), frame(1), quiet(2), quiet(3), frame(4), frame(5)]
        alerts = policy.process(stream)
        kinds = [a.kind for a in alerts]
        assert kinds == ["raised", "cleared", "raised"]

    def test_validation(self):
        with pytest.raises(ValueError):
            AlertPolicy(on_frames=0)
        with pytest.raises(ValueError):
            AlertPolicy(trend_window=2)


FS = 16000.0


class TestAnomalyDetection:
    @pytest.fixture(scope="class")
    def template(self):
        healthy = synthesize_engine(4.0, FS, rng=np.random.default_rng(0))
        return fit_template(healthy, FS)

    def test_healthy_engine_passes(self, template):
        audio = synthesize_engine(2.0, FS, rng=np.random.default_rng(1))
        is_bad, fraction = detect_anomaly(audio, template)
        assert not is_bad
        assert fraction < 0.2

    @pytest.mark.parametrize("defect", ["bearing", "whine", "misfire"])
    def test_defects_flagged(self, template, defect):
        audio = synthesize_engine(
            2.0, FS, defect=defect, defect_level=0.8, rng=np.random.default_rng(2)
        )
        is_bad, fraction = detect_anomaly(audio, template)
        assert is_bad, f"{defect} not detected (fraction {fraction:.2f})"

    def test_scores_higher_for_defect(self, template):
        healthy = synthesize_engine(2.0, FS, rng=np.random.default_rng(3))
        whine = synthesize_engine(2.0, FS, defect="whine", rng=np.random.default_rng(3))
        assert anomaly_scores(whine, template).mean() > anomaly_scores(healthy, template).mean()

    def test_rpm_shift_partial_robustness(self, template):
        # Small rpm change should score lower than an actual defect.
        shifted = synthesize_engine(2.0, FS, rpm=2500.0, rng=np.random.default_rng(4))
        whine = synthesize_engine(2.0, FS, defect="whine", defect_level=0.8,
                                  rng=np.random.default_rng(4))
        assert anomaly_scores(shifted, template).mean() < anomaly_scores(whine, template).mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_template(np.zeros(100), FS)
        with pytest.raises(ValueError):
            synthesize_engine(1.0, FS, defect="gearbox")


class TestPipelineSchedule:
    @pytest.fixture(scope="class")
    def ir(self):
        from repro.core import AcousticPerceptionPipeline

        mics = np.array(
            [[0.1, 0.1, 1.0], [0.1, -0.1, 1.0], [-0.1, -0.1, 1.0], [-0.1, 0.1, 1.0]]
        )
        return AcousticPerceptionPipeline(mics, PipelineConfig()).to_ir()

    def test_stage_partition_covers_all_ops(self, ir):
        stages = plan_stages(ir, RASPI4, 3)
        all_ops = [o for s in stages for o in s.ops]
        assert all_ops == [op.name for op in ir.ops()]
        assert len(stages) == 3

    def test_single_stage_equals_serial(self, ir):
        schedule = pipeline_schedule(ir, RASPI4, n_stages=1)
        serial = estimate_cost(ir, RASPI4)
        assert schedule.frame_latency_s == pytest.approx(serial.latency_s)
        assert schedule.initiation_interval_s == pytest.approx(serial.latency_s)

    def test_pipelining_improves_throughput(self, ir):
        s1 = pipeline_schedule(ir, RASPI4, n_stages=1)
        s3 = pipeline_schedule(ir, RASPI4, n_stages=3)
        assert s3.initiation_interval_s < s1.initiation_interval_s
        assert s3.throughput_fps > s1.throughput_fps
        # But end-to-end latency is unchanged (same work).
        assert s3.frame_latency_s == pytest.approx(s1.frame_latency_s)

    def test_deadline_check(self, ir):
        schedule = pipeline_schedule(ir, RASPI4, n_stages=2)
        assert schedule.meets_deadline(1.0)
        assert not schedule.meets_deadline(1e-9)
        with pytest.raises(ValueError):
            schedule.meets_deadline(0.0)

    def test_validation(self, ir):
        with pytest.raises(ValueError):
            plan_stages(ir, RASPI4, 0)
