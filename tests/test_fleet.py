"""Fleet subsystem tests: corridor synthesis, sharded scheduling, and the
end-to-end 3-node acceptance scenario (two crossing vehicles, fused
position tracks beating the best single node's bearing-only estimates)."""

import numpy as np
import pytest

from repro.acoustics.trajectory import LinearTrajectory, StaticPosition
from repro.core import BlockPipeline, PipelineConfig
from repro.fleet import (
    CorridorScene,
    FleetScheduler,
    OracleDetector,
    Vehicle,
    bearing_only_positions,
    fleet_report,
    format_report,
    fuse_fleet,
    place_corridor_nodes,
    synthesize_corridor,
    track_rms_error,
)
from repro.signals import synthesize_siren

FS = 8000.0


def small_scene(n_nodes=2, duration=0.4, spacing=12.0, n_vehicles=1):
    rng = np.random.default_rng(7)
    vehicles = [
        Vehicle(
            "siren_wail",
            LinearTrajectory([-15.0, 8.0, 0.8], [15.0, 8.0, 0.8], 15.0),
            synthesize_siren("wail", duration, FS, rng=rng),
        )
    ]
    if n_vehicles > 1:
        vehicles.append(
            Vehicle(
                "siren_yelp",
                LinearTrajectory([15.0, 13.0, 0.8], [-15.0, 13.0, 0.8], 12.0),
                synthesize_siren("yelp", duration, FS, rng=rng),
            )
        )
    nodes = place_corridor_nodes(n_nodes, spacing)
    return CorridorScene(vehicles, nodes)


class TestCorridorSynthesis:
    def test_shapes_and_determinism(self):
        scene = small_scene()
        rec1 = synthesize_corridor(scene, FS)
        rec2 = synthesize_corridor(scene, FS)
        n = int(0.4 * FS)
        for node in scene.nodes:
            assert rec1.recordings[node.node_id].shape == (4, n)
            assert np.array_equal(rec1.recordings[node.node_id], rec2.recordings[node.node_id])

    def test_consistent_geometry_nearer_node_is_louder(self):
        # A static source close to node0 must arrive louder there than at
        # the far node — the corridor renders one shared physical scene.
        nodes = place_corridor_nodes(2, 30.0)
        src = nodes[0].position + np.array([0.0, 5.0, -0.2])
        rng = np.random.default_rng(0)
        scene = CorridorScene(
            [Vehicle("siren_wail", StaticPosition(src), synthesize_siren("wail", 0.3, FS, rng=rng))],
            nodes,
        )
        rec = synthesize_corridor(scene, FS)
        e0 = np.mean(rec.recordings["node0"] ** 2)
        e1 = np.mean(rec.recordings["node1"] ** 2)
        assert e0 > 4.0 * e1

    def test_capture_truncation_ragged(self):
        scene = small_scene()
        short = int(0.3 * FS)
        rec = synthesize_corridor(scene, FS, capture_samples={"node1": short})
        assert rec.recordings["node0"].shape[1] == int(0.4 * FS)
        assert rec.recordings["node1"].shape[1] == short
        assert rec.duration_s("node1") == pytest.approx(0.3)

    def test_vehicle_positions_ground_truth(self):
        scene = small_scene(n_vehicles=2)
        rec = synthesize_corridor(scene, FS)
        t = np.array([0.0, 0.1])
        pos = rec.vehicle_positions(t)
        assert pos.shape == (2, 2, 3)
        assert np.allclose(pos[0, 0], [-15.0, 8.0, 0.8])

    def test_invalid_scene(self):
        nodes = place_corridor_nodes(2, 10.0)
        with pytest.raises(ValueError):
            CorridorScene([], nodes)
        with pytest.raises(ValueError, match="unknown class"):
            Vehicle("ufo", StaticPosition([0, 5, 1]), np.ones(10))

    def test_duplicate_node_ids_rejected(self):
        nodes = place_corridor_nodes(2, 10.0)
        clone = [nodes[0], nodes[0]]
        v = Vehicle("horn", StaticPosition([0, 5, 1]), np.ones(10))
        with pytest.raises(ValueError, match="unique"):
            CorridorScene([v], clone)


class TestFleetScheduler:
    def config(self):
        return PipelineConfig(fs=FS, n_azimuth=24, n_elevation=2)

    def test_round_robin_shards(self):
        nodes = place_corridor_nodes(4, 10.0)
        sched = FleetScheduler(nodes, self.config(), n_shards=2)
        assert sched.shards == [["node0", "node2"], ["node1", "node3"]]

    def test_shared_steering_tensors(self):
        nodes = place_corridor_nodes(3, 10.0)
        sched = FleetScheduler(nodes, self.config())
        assert sched.n_shared_localizers == 2
        locs = {id(p.pipeline.localizer) for p in sched.pipelines.values()}
        assert len(locs) == 1

    def test_run_matches_per_node_batched(self):
        scene = small_scene(n_nodes=3)
        rec = synthesize_corridor(scene, FS)
        cfg = self.config()
        detector = OracleDetector("siren_wail")
        sched = FleetScheduler(scene.nodes, cfg, detector=detector, n_shards=1)
        run = sched.run(rec)
        for node in scene.nodes:
            solo = BlockPipeline(node.relative_positions, cfg, detector=detector)
            expected = solo.process_signal(rec.recordings[node.node_id])
            got = run.node_results[node.node_id]
            assert len(got) == len(expected)
            for r1, r2 in zip(got, expected):
                assert r1.label == r2.label
                assert r1.detected == r2.detected
                assert np.isclose(r1.confidence, r2.confidence)
                for a, b in ((r1.azimuth, r2.azimuth), (r1.elevation, r2.elevation)):
                    assert (np.isnan(a) and np.isnan(b)) or np.isclose(a, b)

    def test_ragged_captures_and_stats(self):
        scene = small_scene(n_nodes=3)
        rec = synthesize_corridor(scene, FS, capture_samples={"node2": int(0.3 * FS)})
        sched = FleetScheduler(scene.nodes, self.config(), detector=OracleDetector(), n_shards=1)
        run = sched.run(rec)
        assert run.node_stats["node2"].n_frames < run.node_stats["node0"].n_frames
        for stats in run.node_stats.values():
            assert stats.n_detections == stats.n_frames  # oracle fires always
            assert stats.latency.deadline_s > 0
        assert run.fleet_latency.deadline_s == pytest.approx(0.4)

    def test_threads_match_serial(self):
        scene = small_scene(n_nodes=4, spacing=8.0)
        rec = synthesize_corridor(scene, FS)
        detector = OracleDetector()
        serial = FleetScheduler(scene.nodes, self.config(), detector=detector, n_shards=2)
        threaded = FleetScheduler(
            scene.nodes, self.config(), detector=detector, n_shards=2, use_threads=True
        )
        r1 = serial.run(rec)
        r2 = threaded.run(rec)
        for nid in r1.node_results:
            az1 = [r.azimuth for r in r1.node_results[nid]]
            az2 = [r.azimuth for r in r2.node_results[nid]]
            assert np.allclose(az1, az2, equal_nan=True)

    def test_heterogeneous_mic_counts_build_without_sharing(self):
        from repro.acoustics.environment import MicrophoneArray
        from repro.arrays import uniform_circular_array
        from repro.fleet import CorridorNode

        nodes = [
            CorridorNode("quad", MicrophoneArray(uniform_circular_array(4, 0.1) + [0, 0, 0])),
            CorridorNode("hex", MicrophoneArray(uniform_circular_array(6, 0.1) + [20, 0, 0])),
        ]
        sched = FleetScheduler(nodes, self.config())
        assert sched.n_shared_localizers == 0

    def test_mismatched_recording_fs_rejected(self):
        scene = small_scene(n_nodes=2)
        rec = synthesize_corridor(scene, FS)
        sched = FleetScheduler(scene.nodes, PipelineConfig(fs=16000.0, n_azimuth=24, n_elevation=2))
        with pytest.raises(ValueError, match="does not match pipeline fs"):
            sched.run(rec)

    def test_missing_recording_rejected(self):
        scene = small_scene(n_nodes=2)
        rec = synthesize_corridor(scene, FS)
        sched = FleetScheduler(scene.nodes, self.config())
        clips = dict(rec.recordings)
        del clips["node1"]
        with pytest.raises(ValueError, match="missing recordings"):
            sched.run(clips)


class TestEndToEndCorridor:
    """The PR acceptance scenario: 3 nodes, two crossing vehicles."""

    @pytest.fixture(scope="class")
    def corridor_run(self):
        fs = FS
        duration = 3.0
        rng = np.random.default_rng(0)
        vehicles = [
            Vehicle(
                "siren_wail",
                LinearTrajectory([-35.0, 8.0, 0.8], [35.0, 8.0, 0.8], 15.0),
                synthesize_siren("wail", duration, fs, rng=rng),
            ),
            Vehicle(
                "siren_yelp",
                LinearTrajectory([35.0, 14.0, 0.8], [-35.0, 14.0, 0.8], 12.0),
                synthesize_siren("yelp", duration, fs, rng=rng),
            ),
        ]
        nodes = place_corridor_nodes(3, 25.0)
        recording = synthesize_corridor(CorridorScene(vehicles, nodes), fs)
        config = PipelineConfig(fs=fs, n_azimuth=72, n_elevation=2, localizer="srp_fast")
        scheduler = FleetScheduler(nodes, config, detector=OracleDetector("siren_wail"))
        run = scheduler.run(recording)
        tracks = fuse_fleet(run.node_results, nodes, frame_period=config.frame_period_s)
        return recording, nodes, config, run, tracks

    def _truth(self, recording, config, n_frames):
        t = np.arange(n_frames) * config.frame_period_s
        return recording.vehicle_positions(t)[:, :, :2]

    def test_both_vehicles_get_fused_position_tracks(self, corridor_run):
        recording, nodes, config, run, tracks = corridor_run
        confirmed = [t for t in tracks if t.confirmed]
        assert len(confirmed) >= 2
        n_frames = max(len(r) for r in run.node_results.values())
        truth = self._truth(recording, config, n_frames)
        for v in range(2):
            errors = [track_rms_error(t, truth[v]) for t in confirmed]
            best = min(e for e in errors if np.isfinite(e))
            assert best < 10.0  # metres, corridor-level localization
        # The fused tracks are positioned, not bearing-only: they carry
        # cross-node triangulated fixes from multiple nodes.
        positioned = [t for t in confirmed if not t.bearing_only and len(t.nodes) >= 2]
        assert len(positioned) >= 2

    def test_fused_beats_best_single_node_bearing_only(self, corridor_run):
        recording, nodes, config, run, tracks = corridor_run
        confirmed = [t for t in tracks if t.confirmed]
        n_frames = max(len(r) for r in run.node_results.values())
        truth = self._truth(recording, config, n_frames)
        fused_rms = []
        for v in range(2):
            errors = [track_rms_error(t, truth[v]) for t in confirmed]
            fused_rms.append(min(e for e in errors if np.isfinite(e)))
        fused = float(np.sqrt(np.mean(np.square(fused_rms))))
        single = []
        for node in nodes:
            fr, pos = bearing_only_positions(
                run.node_results[node.node_id], node, road_line_y=11.0
            )
            assert len(fr) > 0
            # Generous baseline: every estimate scores against whichever
            # vehicle it happens to be closest to.
            per_frame = np.min(
                [np.sum((pos - truth[v][fr]) ** 2, axis=1) for v in range(2)], axis=0
            )
            single.append(float(np.sqrt(per_frame.mean())))
        assert fused < min(single)

    def test_speed_estimates_from_track_slope(self, corridor_run):
        recording, nodes, config, run, tracks = corridor_run
        report = fleet_report(tracks, run, frame_period=config.frame_period_s)
        entered = [e for e in report.events if e.kind == "vehicle_entered"]
        assert len(entered) >= 2
        # At least one track's slope speed lands near a true vehicle speed.
        speeds = sorted(e.speed_mps for e in entered)
        assert any(8.0 < s < 22.0 for s in speeds)

    def test_report_and_health(self, corridor_run):
        recording, nodes, config, run, tracks = corridor_run
        report = fleet_report(tracks, run, frame_period=config.frame_period_s)
        assert report.n_vehicles >= 2
        assert len(report.node_health) == 3
        for h in report.node_health:
            assert h.n_frames == 92
            assert h.detection_rate == 1.0
            assert h.n_alerts >= 1  # the AlertPolicy hysteresis raised
        text = format_report(report)
        assert "vehicle_entered" in text
        assert "node0" in text
