"""Integration: joint SELD on simulated multichannel road audio."""

import numpy as np
import pytest

from repro.acoustics import MicrophoneArray, RoadAcousticsSimulator, Scene, StaticPosition
from repro.signals import synthesize_horn, synthesize_siren
from repro.ssl import SeldConfig, SeldNet, azel_to_unit, seld_features, train_seld

FS = 8000.0
MICS = np.array(
    [[0.05, 0.05, 1.0], [0.05, -0.05, 1.0], [-0.05, -0.05, 1.0], [-0.05, 0.05, 1.0]]
)


def simulate_event(kind, azimuth, seed):
    src = 20.0 * azel_to_unit(azimuth, 0.0) + np.array([0, 0, 1.0])
    scene = Scene(StaticPosition(src), MicrophoneArray(MICS), surface=None)
    sim = RoadAcousticsSimulator(scene, FS, air_absorption=False, interpolation="linear")
    rng = np.random.default_rng(seed)
    if kind == 0:
        sig = synthesize_siren("yelp", 0.6, FS, rng=rng, jitter=0.05)
    else:
        sig = synthesize_horn(0.6, FS, rng=rng, jitter=0.05)
    received = sim.simulate(sig)
    received += 0.02 * rng.standard_normal(received.shape)
    return received


@pytest.fixture(scope="module")
def seld_dataset():
    feats, classes, doas = [], [], []
    azimuths = [-2.2, -0.7, 0.9, 2.4]
    for i in range(24):
        kind = i % 2
        az = azimuths[i % len(azimuths)]
        received = simulate_event(kind, az, seed=i)
        f = seld_features(received, FS, n_mels=16, n_fft=256, hop=256)
        # Crop to a fixed frame count for batching.
        feats.append(f[:, :, :16])
        classes.append(kind)
        doas.append(azel_to_unit(az, 0.0))
    return np.stack(feats), np.array(classes), np.stack(doas)


class TestSeldEndToEnd:
    def test_feature_stack_shape(self, seld_dataset):
        x, _, _ = seld_dataset
        assert x.shape[1] == 10  # 4 mics + 6 GCC pair channels
        assert x.shape[2] == 16

    def test_joint_model_learns_simulated_scenes(self, seld_dataset):
        x, y_class, y_doa = seld_dataset
        net = SeldNet(
            SeldConfig(n_classes=2, n_input_channels=10, base_channels=6),
            rng=np.random.default_rng(0),
        )
        history = train_seld(net, x, y_class, y_doa, epochs=25, lr=3e-3, batch_size=8)
        assert history["class_loss"][-1] < history["class_loss"][0]
        assert history["doa_loss"][-1] < history["doa_loss"][0]
        pred_class, _, pred_doa = net.predict(x)
        # Train-set fit: the joint heads must at least separate the classes
        # and point DOAs into the correct half-space on seen data.
        assert float(np.mean(pred_class == y_class)) >= 0.75
        cos = np.sum(pred_doa * y_doa, axis=1)
        assert float(np.mean(cos)) > 0.5
