"""Equivalence tests: batched block engine vs the streaming pipeline.

The contract of :mod:`repro.core.batch` is that ``BlockPipeline`` /
``process_signal_batched`` produce the same ``FrameResult`` sequence as the
frame-by-frame ``process_signal`` — labels, confidences, detection flags and
DOA tracks — across every localizer configuration.
"""

import numpy as np
import pytest

from repro.core import (
    AcousticPerceptionPipeline,
    BlockPipeline,
    PipelineConfig,
    process_signal_batched,
)
from repro.nn import Dense, Sequential
from repro.sed.events import EVENT_CLASSES

MICS = np.array(
    [[0.1, 0.1, 1.0], [0.1, -0.1, 1.0], [-0.1, -0.1, 1.0], [-0.1, 0.1, 1.0]]
)


class AlwaysSiren(Sequential):
    """Forces every frame through detection + localization + tracking."""

    def __init__(self, n_mels):
        super().__init__(Dense(n_mels, len(EVENT_CLASSES)))

    def forward(self, x):
        out = np.full((x.shape[0], len(EVENT_CLASSES)), -10.0)
        out[:, 1] = 10.0  # siren_wail
        return out


def assert_results_equal(streamed, batched):
    assert len(streamed) == len(batched)
    for r1, r2 in zip(streamed, batched):
        assert r1.frame_index == r2.frame_index
        assert r1.label == r2.label
        assert r1.detected == r2.detected
        assert np.isclose(r1.confidence, r2.confidence)
        for a, b in ((r1.azimuth, r2.azimuth), (r1.elevation, r2.elevation)):
            assert (np.isnan(a) and np.isnan(b)) or np.isclose(a, b)


def signal(seed=0, n=16000):
    return np.random.default_rng(seed).standard_normal((4, n))


@pytest.mark.parametrize("localizer", ["srp", "srp_fast", "music"])
class TestEquivalence:
    def config(self, localizer):
        return PipelineConfig(localizer=localizer, n_azimuth=24, n_elevation=2)

    def test_untrained_detector(self, localizer):
        p = AcousticPerceptionPipeline(MICS, self.config(localizer))
        streamed = p.process_signal(signal())
        p.reset()
        batched = p.process_signal_batched(signal())
        assert_results_equal(streamed, batched)

    def test_every_frame_localized(self, localizer):
        cfg = self.config(localizer)
        p = AcousticPerceptionPipeline(MICS, cfg, detector=AlwaysSiren(cfg.n_mels))
        streamed = p.process_signal(signal(1))
        p.reset()
        batched = p.process_signal_batched(signal(1))
        assert all(r.detected for r in streamed)
        assert all(np.isfinite(r.azimuth) for r in batched)
        assert_results_equal(streamed, batched)

    def test_block_pipeline_wrapper(self, localizer):
        cfg = self.config(localizer)
        block = BlockPipeline(MICS, cfg)
        inner = block.pipeline
        streamed = inner.process_signal(signal(2))
        block.reset()
        batched = block.process_signal(signal(2))
        assert_results_equal(streamed, batched)


class TestStateSharing:
    def test_tracker_and_index_continue_across_engines(self):
        cfg = PipelineConfig(n_azimuth=24, n_elevation=2)
        ref = AcousticPerceptionPipeline(MICS, cfg, detector=AlwaysSiren(cfg.n_mels))
        mixed = AcousticPerceptionPipeline(MICS, cfg, detector=AlwaysSiren(cfg.n_mels))
        first, second = signal(3, 8000), signal(4, 8000)
        expected = ref.process_signal(first) + ref.process_signal(second)
        got = mixed.process_signal(first) + mixed.process_signal_batched(second)
        assert_results_equal(expected, got)

    def test_wrapping_shares_state(self):
        cfg = PipelineConfig(n_azimuth=24, n_elevation=2)
        p = AcousticPerceptionPipeline(MICS, cfg, detector=AlwaysSiren(cfg.n_mels))
        block = BlockPipeline(p)
        block.process_signal(signal(5, 8000))
        assert p.tracker.initialized
        assert p._frame_index > 0

    def test_function_form_matches_method(self):
        cfg = PipelineConfig(n_azimuth=24, n_elevation=2)
        p = AcousticPerceptionPipeline(MICS, cfg)
        a = process_signal_batched(p, signal(6))
        p.reset()
        b = p.process_signal_batched(signal(6))
        assert_results_equal(a, b)


class TestProcessBatch:
    def test_matches_per_clip_streaming(self):
        cfg = PipelineConfig(n_azimuth=24, n_elevation=2)
        p = AcousticPerceptionPipeline(MICS, cfg, detector=AlwaysSiren(cfg.n_mels))
        block = BlockPipeline(p)
        clips = np.random.default_rng(7).standard_normal((3, 4, 6000))
        batched = block.process_batch(clips)
        for clip, got in zip(clips, batched):
            p.reset()
            assert_results_equal(p.process_signal(clip), got)

    def test_each_clip_gets_fresh_tracker(self):
        cfg = PipelineConfig(n_azimuth=24, n_elevation=2)
        block = BlockPipeline(MICS, cfg, detector=AlwaysSiren(cfg.n_mels))
        clips = np.random.default_rng(8).standard_normal((2, 4, 6000))
        out = block.process_batch(clips)
        for results in out:
            assert results[0].frame_index == 0
        # The wrapped pipeline's own streaming state is untouched.
        assert not block.pipeline.tracker.initialized

    def test_validation(self):
        block = BlockPipeline(MICS, PipelineConfig(n_azimuth=24, n_elevation=2))
        with pytest.raises(ValueError):
            block.process_batch(np.zeros((2, 3, 6000)))  # wrong mic count
        with pytest.raises(ValueError):
            block.process_batch(np.zeros((2, 4, 100)))  # shorter than a frame


class TestValidation:
    def test_signal_shape_checks(self):
        p = AcousticPerceptionPipeline(MICS, PipelineConfig(n_azimuth=24, n_elevation=2))
        with pytest.raises(ValueError):
            p.process_signal_batched(np.zeros((2, 4000)))
        with pytest.raises(ValueError):
            p.process_signal_batched(np.zeros((4, 100)))

    def test_wrapper_rejects_conflicting_arguments(self):
        p = AcousticPerceptionPipeline(MICS, PipelineConfig(n_azimuth=24, n_elevation=2))
        with pytest.raises(ValueError):
            BlockPipeline(p, PipelineConfig())

    def test_frame_count_matches_streaming(self):
        p = AcousticPerceptionPipeline(MICS, PipelineConfig(n_azimuth=24, n_elevation=2))
        results = p.process_signal_batched(np.zeros((4, 4000)))
        assert len(results) == 1 + (4000 - 512) // 256


class TestRaggedBatch:
    """Ragged-length clips (fleet nodes with unequal capture windows)."""

    def config(self):
        return PipelineConfig(n_azimuth=24, n_elevation=2)

    def test_ragged_matches_per_clip_streaming(self):
        cfg = self.config()
        block = BlockPipeline(MICS, cfg, detector=AlwaysSiren(cfg.n_mels))
        p = block.pipeline
        rng = np.random.default_rng(11)
        clips = [rng.standard_normal((4, n)) for n in (4000, 6100, 2900)]
        batched = block.process_batch(clips)
        assert len(batched) == 3
        for clip, got in zip(clips, batched):
            p.reset()
            assert_results_equal(p.process_signal(clip), got)
        p.reset()

    def test_ragged_matches_rectangular_when_equal(self):
        cfg = self.config()
        block = BlockPipeline(MICS, cfg, detector=AlwaysSiren(cfg.n_mels))
        clips = np.random.default_rng(12).standard_normal((3, 4, 4000))
        rect = block.process_batch(clips)
        ragged = block.process_batch([clips[0], clips[1], clips[2]])
        for a, b in zip(rect, ragged):
            assert_results_equal(a, b)

    def test_ragged_validation(self):
        block = BlockPipeline(MICS, self.config())
        with pytest.raises(ValueError):
            block.process_batch([])
        with pytest.raises(ValueError):
            block.process_batch([np.zeros((3, 4000))])  # wrong mic count
        with pytest.raises(ValueError):
            block.process_batch([np.zeros((4, 4000)), np.zeros((4, 100))])  # too short


class TestExternalLocalizers:
    """The hop kernel must keep the streaming tick's contract for custom
    localizers: a ``localize``-only object (no ``localize_batch``, no
    cache/state keywords) still drives, frame by frame."""

    def config(self):
        return PipelineConfig(n_azimuth=24, n_elevation=2)

    class LocalizeOnly:
        """Minimal external localizer: just ``localize(frames)``."""

        def __init__(self):
            self.calls = 0

        def localize(self, frames):
            from repro.ssl.srp import SrpResult

            self.calls += 1
            assert frames.ndim == 2  # one (n_mics, frame_length) block
            return SrpResult(
                map=np.zeros((1, 1)), azimuth=0.3, elevation=0.1,
                direction=np.array([1.0, 0.0, 0.0]),
            )

    def test_streaming_tick_with_localize_only(self):
        cfg = self.config()
        loc = self.LocalizeOnly()
        p = AcousticPerceptionPipeline(
            MICS, cfg, detector=AlwaysSiren(cfg.n_mels), localizer=loc
        )
        r = p.process_frame(np.random.default_rng(0).standard_normal((4, 512)))
        assert r.detected and np.isfinite(r.azimuth)
        assert loc.calls == 1

    def test_batched_with_localize_only(self):
        cfg = self.config()
        loc = self.LocalizeOnly()
        p = AcousticPerceptionPipeline(
            MICS, cfg, detector=AlwaysSiren(cfg.n_mels), localizer=loc
        )
        results = p.process_signal_batched(signal(8, 4000))
        assert all(r.detected for r in results)
        assert loc.calls == len(results)

    def test_localize_only_state_kwarg_forwarded(self):
        cfg = self.config()

        class StatefulLocalizeOnly(self.LocalizeOnly):
            def __init__(self):
                super().__init__()
                self.states = []

            def localize(self, frames, *, state=None):
                self.states.append(state)
                return super().localize(frames)

        loc = StatefulLocalizeOnly()
        p = AcousticPerceptionPipeline(
            MICS, cfg, detector=AlwaysSiren(cfg.n_mels), localizer=loc
        )
        p.process_frame(np.random.default_rng(1).standard_normal((4, 512)))
        assert loc.states == [p.refine_state]
