"""Tests for repro.nn layers: gradients vs numerical differentiation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    BatchNorm,
    Dense,
    Dropout,
    Flatten,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)

RNG = np.random.default_rng(0)


def numeric_input_grad(model, x, w_out, eps=1e-6, n_checks=25):
    """Central-difference gradient of sum(model(x) * w_out) w.r.t. x."""
    grads = np.zeros(min(x.size, n_checks))
    flat = x.ravel()
    for i in range(grads.size):
        orig = flat[i]
        flat[i] = orig + eps
        f1 = float(np.sum(model.forward(x) * w_out))
        flat[i] = orig - eps
        f0 = float(np.sum(model.forward(x) * w_out))
        flat[i] = orig
        grads[i] = (f1 - f0) / (2 * eps)
    return grads


def check_gradients(model, x, atol=1e-6):
    out = model.forward(x)
    w_out = np.random.default_rng(1).standard_normal(out.shape)
    model.zero_grad()
    model.forward(x)
    analytic = model.backward(w_out)
    numeric = numeric_input_grad(model, x, w_out)
    assert np.allclose(analytic.ravel()[: numeric.size], numeric, atol=atol)
    for p in model.parameters():
        model.zero_grad()
        model.forward(x)
        model.backward(w_out)
        g = p.grad.ravel()[0]
        orig = p.data.ravel()[0]
        eps = 1e-6
        p.data.ravel()[0] = orig + eps
        f1 = float(np.sum(model.forward(x) * w_out))
        p.data.ravel()[0] = orig - eps
        f0 = float(np.sum(model.forward(x) * w_out))
        p.data.ravel()[0] = orig
        assert g == pytest.approx((f1 - f0) / (2 * eps), abs=1e-5)


class TestDense:
    def test_forward_values(self):
        d = Dense(2, 2)
        d.w.data = np.array([[1.0, 0.0], [0.0, 2.0]])
        d.b.data = np.array([0.5, -0.5])
        out = d.forward(np.array([[1.0, 1.0]]))
        assert np.allclose(out, [[1.5, 1.5]])

    def test_gradients(self):
        check_gradients(Sequential(Dense(5, 3)), RNG.standard_normal((4, 5)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Dense(4, 3).forward(np.ones((2, 5)))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Dense(3, 2).backward(np.ones((1, 2)))

    def test_param_count(self):
        assert Dense(10, 4).parameters()[0].size + Dense(10, 4).parameters()[1].size == 44


class TestActivations:
    def test_relu_values(self):
        out = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        assert np.allclose(out, [0.0, 0.0, 2.0])

    def test_relu_gradient_mask(self):
        r = ReLU()
        r.forward(np.array([-1.0, 2.0]))
        g = r.backward(np.array([1.0, 1.0]))
        assert np.allclose(g, [0.0, 1.0])

    def test_sigmoid_range_and_grad(self):
        check_gradients(Sequential(Dense(3, 3), Sigmoid()), RNG.standard_normal((2, 3)))
        assert np.all((Sigmoid().forward(RNG.standard_normal(100)) > 0))

    def test_sigmoid_saturation_no_overflow(self):
        out = Sigmoid().forward(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out))

    def test_tanh_gradients(self):
        check_gradients(Sequential(Dense(3, 3), Tanh()), RNG.standard_normal((2, 3)))


class TestFlattenDropout:
    def test_flatten_round_trip(self):
        f = Flatten()
        x = RNG.standard_normal((2, 3, 4))
        y = f.forward(x)
        assert y.shape == (2, 12)
        assert f.backward(y).shape == x.shape

    def test_dropout_eval_identity(self):
        d = Dropout(0.5)
        d.eval()
        x = RNG.standard_normal((4, 8))
        assert np.allclose(d.forward(x), x)

    def test_dropout_training_scales(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 100))
        y = d.forward(x)
        assert y.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestBatchNorm:
    def test_normalizes_training_batch(self):
        bn = BatchNorm(3)
        x = RNG.standard_normal((64, 3)) * 5 + 2
        y = bn.forward(x)
        assert np.allclose(y.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(y.std(axis=0), 1.0, atol=1e-3)

    def test_running_stats_used_in_eval(self):
        bn = BatchNorm(2, momentum=0.5)
        x = RNG.standard_normal((32, 2)) + 3.0
        for _ in range(30):
            bn.forward(x)
        bn.eval()
        y = bn.forward(x)
        assert np.abs(y.mean(axis=0)).max() < 0.5

    def test_gradients_training(self):
        check_gradients(Sequential(BatchNorm(3)), RNG.standard_normal((8, 3, 4)))

    def test_gradients_4d(self):
        check_gradients(Sequential(BatchNorm(2)), RNG.standard_normal((3, 2, 5, 5)))

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            BatchNorm(4).forward(np.ones((2, 3)))


class TestSequential:
    def test_train_eval_propagates(self):
        model = Sequential(Dense(4, 4), Dropout(0.5), ReLU())
        model.eval()
        assert not model.layers[1].training
        model.train()
        assert model.layers[1].training

    def test_summary_lists_layers(self):
        model = Sequential(Dense(8, 4), ReLU(), Dense(4, 2))
        text = model.summary((8,))
        assert "Dense" in text and "total" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Sequential()

    def test_n_parameters(self):
        model = Sequential(Dense(8, 4), Dense(4, 2))
        assert model.n_parameters() == (8 * 4 + 4) + (4 * 2 + 2)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
    def test_gradient_random_mlp(self, n_in, n_hidden):
        model = Sequential(Dense(n_in, n_hidden), Tanh(), Dense(n_hidden, 2))
        check_gradients(model, np.random.default_rng(3).standard_normal((3, n_in)))
