"""Tests for the real-time ingest runtime (:mod:`repro.stream`).

Ring-buffer semantics (wraparound, overflow drops, O(frame) memory), the
chunk-source replay feed (sequence gaps, jitter), ingest accounting, and the
single-node :class:`StreamPipeline` contract: the hop-clocked engine yields
the exact :class:`FrameResult` stream of the offline batched engine on the
same audio, under any chunking.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AcousticPerceptionPipeline, PipelineConfig, process_signal_batched
from repro.dsp.stft import frame_signals
from repro.stream import (
    Chunk,
    NodeIngest,
    RecordingChunkSource,
    RingBuffer,
    StreamPipeline,
)

MICS = np.array(
    [[0.1, 0.1, 1.0], [0.1, -0.1, 1.0], [-0.1, -0.1, 1.0], [-0.1, 0.1, 1.0]]
)


def assert_results_equal(streamed, batched):
    assert len(streamed) == len(batched)
    for r1, r2 in zip(streamed, batched):
        assert r1.frame_index == r2.frame_index
        assert r1.label == r2.label
        assert r1.detected == r2.detected
        assert np.isclose(r1.confidence, r2.confidence)
        for a, b in ((r1.azimuth, r2.azimuth), (r1.elevation, r2.elevation)):
            assert (np.isnan(a) and np.isnan(b)) or np.isclose(a, b)


class TestRingBuffer:
    def test_frames_match_offline_framing(self):
        x = np.random.default_rng(0).standard_normal((3, 4000))
        ring = RingBuffer(3, 2048)
        frames = []
        for lo in range(0, 4000, 130):
            ring.push(x[:, lo : lo + 130])
            out = ring.pop_frames(256, 128)
            if out.shape[0]:
                frames.append(out)
        got = np.concatenate(frames, axis=0)
        expected = frame_signals(x, 256, 128, pad=False).transpose(1, 0, 2)
        assert got.shape == expected.shape
        assert np.allclose(got, expected)

    def test_max_frames_limits_consumption(self):
        ring = RingBuffer(2, 4096)
        ring.push(np.arange(2 * 2000, dtype=float).reshape(2, 2000))
        out = ring.pop_frames(256, 128, max_frames=3)
        assert out.shape[0] == 3
        # The rest remains poppable.
        rest = ring.pop_frames(256, 128)
        assert rest.shape[0] == 1 + (2000 - 3 * 128 - 256) // 128

    def test_overflow_drops_oldest_and_counts(self):
        ring = RingBuffer(1, 500)
        ring.push(np.arange(400, dtype=float)[None])
        dropped = ring.push(np.arange(400, 700, dtype=float)[None])
        assert dropped == 200
        assert ring.dropped_samples == 200
        assert ring.available == 500
        # The newest 500 samples survived: 200..699.
        out = ring.pop_frames(500, 500)
        assert np.array_equal(out[0, 0], np.arange(200, 700, dtype=float))

    def test_giant_chunk_keeps_newest(self):
        ring = RingBuffer(1, 256)
        ring.push(np.ones((1, 100)))
        dropped = ring.push(np.arange(1000, dtype=float)[None])
        assert dropped == 100 + (1000 - 256)
        out = ring.pop_frames(256, 256)
        assert np.array_equal(out[0, 0], np.arange(744, 1000, dtype=float))

    def test_memory_stays_fixed(self):
        ring = RingBuffer(4, 1024)
        for _ in range(100):
            ring.push(np.zeros((4, 300)))
            ring.pop_frames(512, 256)
        assert ring.capacity == 1024  # never grows: O(frame), not O(stream)

    def test_validation(self):
        with pytest.raises(ValueError):
            RingBuffer(0, 10)
        ring = RingBuffer(2, 100)
        with pytest.raises(ValueError):
            ring.push(np.zeros((3, 10)))
        with pytest.raises(ValueError):
            ring.pop_frames(200, 100)  # frame larger than capacity


class TestRecordingChunkSource:
    def test_slices_and_timestamps(self):
        x = np.random.default_rng(1).standard_normal((2, 1000))
        src = RecordingChunkSource(x, 8000.0, chunk_samples=256)
        chunks = []
        while (c := src.next_chunk()) is not None:
            chunks.append(c)
        assert [c.seq for c in chunks] == [0, 1, 2, 3]
        assert chunks[-1].data.shape == (2, 1000 - 3 * 256)  # short tail, no padding
        assert chunks[0].t == pytest.approx(256 / 8000.0)
        assert np.allclose(np.concatenate([c.data for c in chunks], axis=1), x)

    def test_drops_consume_sequence_numbers(self):
        x = np.zeros((1, 256 * 50))
        src = RecordingChunkSource(
            x, 8000.0, chunk_samples=256, drop_prob=0.4, rng=np.random.default_rng(3)
        )
        seqs = []
        while (c := src.next_chunk()) is not None:
            seqs.append(c.seq)
        assert len(seqs) < 50  # some were dropped
        assert seqs == sorted(seqs)
        assert max(seqs) <= 49

    def test_jitter_delays_arrival(self):
        x = np.zeros((1, 1024))
        src = RecordingChunkSource(
            x, 8000.0, chunk_samples=256, jitter_s=0.5, rng=np.random.default_rng(4)
        )
        c = src.next_chunk()
        assert c.arrival_s >= c.t

    def test_jitter_keeps_arrivals_non_decreasing(self):
        """Chunk k+1 must never become available before chunk k: delivery is
        one ordered transport, whatever each chunk's own jitter draw says.
        (Regression: independent uniform draws let a big-jitter chunk be
        followed by a small-jitter one that 'arrived' earlier.)"""
        x = np.zeros((1, 256 * 200))
        src = RecordingChunkSource(
            # Heavy jitter relative to the 32 ms chunk period, so unclamped
            # draws would reorder arrivals constantly.
            x, 8000.0, chunk_samples=256, jitter_s=0.5, rng=np.random.default_rng(11)
        )
        arrivals = []
        while (c := src.next_chunk()) is not None:
            arrivals.append(c.arrival_s)
        assert arrivals == sorted(arrivals)
        # The clamp delays chunks, it never time-travels them before capture.
        assert all(a >= (k + 1) * 256 / 8000.0 for k, a in enumerate(arrivals))

    def test_late_dropped_stats_sane_under_heavy_jitter(self):
        fs = 8000.0
        x = np.random.default_rng(12).standard_normal((2, 256 * 120))
        src = RecordingChunkSource(
            x, fs, chunk_samples=256, drop_prob=0.2, jitter_s=0.3,
            rng=np.random.default_rng(13),
        )
        ingest = NodeIngest(src, 512, 256, late_tolerance_s=0.05)
        ingest.pull(None)
        s = ingest.stats
        assert s.n_dropped_chunks > 0
        assert s.n_late_chunks > 0
        # Ordered delivery: every chunk after a late one is at least as late,
        # so lateness counts stay consistent with the chunk count.
        assert s.n_late_chunks <= s.n_chunks
        # Drops are seen as sequence gaps between delivered chunks, so a run
        # of drops at the very end of the stream is invisible — the counts
        # must still never exceed the capture total.
        assert s.n_chunks + s.n_dropped_chunks <= src.n_chunks_total

    def test_reset_replays_identical_fault_pattern(self):
        """reset() must rewind the fault RNG with the cursor: a replay that
        draws a fresh drop/jitter sequence is not a replay.  (Regression:
        reset() rewound cursor and seq but left the generator advanced.)"""
        x = np.random.default_rng(14).standard_normal((1, 256 * 80))
        src = RecordingChunkSource(
            x, 8000.0, chunk_samples=256, drop_prob=0.3, jitter_s=0.2,
            rng=np.random.default_rng(15),
        )
        def drain():
            out = []
            while (c := src.next_chunk()) is not None:
                out.append((c.seq, c.t, c.arrival_s))
            return out
        first = drain()
        src.reset()
        assert drain() == first


class TestNodeIngest:
    def test_gap_zero_fill_keeps_hop_grid(self):
        fs = 8000.0
        x = np.random.default_rng(5).standard_normal((2, 4096))

        class GappySource(RecordingChunkSource):
            def next_chunk(self):
                c = super().next_chunk()
                # Drop seq 3 deterministically.
                if c is not None and c.seq == 3:
                    return super().next_chunk()
                return c

        ingest = NodeIngest(GappySource(x, fs, chunk_samples=256), 512, 256)
        ingest.pull(None)
        frames = ingest.pop_frames(None)
        assert ingest.stats.n_dropped_chunks == 1
        # Total hop grid unchanged: zero-fill stands in for the lost chunk.
        assert frames.shape[0] == 1 + (4096 - 512) // 256
        # The zero-filled hop really is silent where the chunk was lost
        # (chunk 3 spanned samples 768..1024: frame 3's first hop).
        assert np.allclose(frames[3, :, :256], 0.0)
        assert np.allclose(frames[2, :, 256:], 0.0)

    def test_late_accounting(self):
        x = np.zeros((1, 2048))
        src = RecordingChunkSource(
            x, 8000.0, chunk_samples=256, jitter_s=1.0, rng=np.random.default_rng(6)
        )
        ingest = NodeIngest(src, 512, 256, late_tolerance_s=0.01)
        ingest.pull(None)
        assert ingest.stats.n_late_chunks > 0

    def test_time_gated_pull(self):
        x = np.zeros((1, 2560))
        src = RecordingChunkSource(x, 8000.0, chunk_samples=256)
        ingest = NodeIngest(src, 512, 256)
        assert ingest.pull(512 / 8000.0) == 2  # only the chunks captured by t
        assert ingest.ring.available == 512
        assert ingest.pull(None) == 8
        assert ingest.exhausted

    def test_pull_gates_on_arrival_not_capture(self):
        """A jitter-delayed chunk must not be consumable before it arrives:
        delivery stalls the frames, exactly like a slow driver."""
        x = np.zeros((1, 1024))

        class DelayedSource(RecordingChunkSource):
            def next_chunk(self):
                c = super().next_chunk()
                if c is None:
                    return None
                return Chunk(data=c.data, seq=c.seq, t=c.t, arrival_s=c.t + 0.5)

        ingest = NodeIngest(DelayedSource(x, 8000.0, chunk_samples=256), 512, 256)
        assert ingest.pull(256 / 8000.0) == 0  # captured, but not yet delivered
        assert ingest.pull(0.5 + 256 / 8000.0) == 1  # arrives half a second later


class TestStreamPipeline:
    def config(self):
        return PipelineConfig(n_azimuth=24, n_elevation=2)

    def test_matches_batched_engine(self):
        cfg = self.config()
        sig = np.random.default_rng(7).standard_normal((4, 12000))
        ref = AcousticPerceptionPipeline(MICS, cfg)
        expected = process_signal_batched(ref, sig)
        sp = StreamPipeline(MICS, cfg, hop_batch=4)
        sp.pipeline.detector = ref.detector  # same untrained weights
        res = sp.run(RecordingChunkSource(sig, cfg.fs, chunk_samples=cfg.hop_length))
        assert_results_equal(res.results, expected)
        assert res.ingest.n_dropped_chunks == 0
        assert res.latency.deadline_s == pytest.approx(cfg.frame_period_s)

    @settings(max_examples=6, deadline=None)
    @given(
        hop_batch=st.integers(min_value=1, max_value=16),
        chunk_samples=st.integers(min_value=64, max_value=1024),
    )
    def test_chunking_and_batching_invariance(self, hop_batch, chunk_samples):
        """Any (chunk size, hop batch) delivery schedule yields the exact
        batched-engine result stream — processing time is the only thing
        the hop clock changes."""
        cfg = self.config()
        sig = np.random.default_rng(99).standard_normal((4, 6000))
        ref = AcousticPerceptionPipeline(MICS, cfg)
        expected = process_signal_batched(ref, sig)
        sp = StreamPipeline(MICS, cfg, hop_batch=hop_batch)
        sp.pipeline.detector = ref.detector
        res = sp.run(RecordingChunkSource(sig, cfg.fs, chunk_samples=chunk_samples))
        assert_results_equal(res.results, expected)

    def test_jitter_delays_but_never_changes_results(self):
        """Delivery jitter stalls frames to later steps; once everything
        arrives, the result stream is still the batched engine's."""
        cfg = self.config()
        sig = np.random.default_rng(21).standard_normal((4, 6000))
        ref = AcousticPerceptionPipeline(MICS, cfg)
        expected = process_signal_batched(ref, sig)
        sp = StreamPipeline(MICS, cfg, hop_batch=4)
        sp.pipeline.detector = ref.detector
        source = RecordingChunkSource(
            sig, cfg.fs, chunk_samples=cfg.hop_length,
            jitter_s=0.3, rng=np.random.default_rng(8),
        )
        # Ring sized for the worst-case delivery stall (0.3 s of audio).
        sp.attach(source, ring_capacity=cfg.frame_length + 2 * int(0.3 * cfg.fs))
        res = sp.run()
        assert_results_equal(res.results, expected)
        assert res.ingest.n_late_chunks > 0  # the jitter really was felt
        assert res.ingest.dropped_samples == 0

    def test_attach_validation(self):
        cfg = self.config()
        sp = StreamPipeline(MICS, cfg)
        with pytest.raises(ValueError, match="channels"):
            sp.attach(RecordingChunkSource(np.zeros((2, 1000)), cfg.fs, chunk_samples=256))
        with pytest.raises(ValueError, match="fs"):
            sp.attach(RecordingChunkSource(np.zeros((4, 1000)), 8000.0, chunk_samples=256))
        with pytest.raises(RuntimeError, match="no source"):
            sp.step()

    def test_chunk_is_frozen_record(self):
        c = Chunk(data=np.zeros((1, 4)), seq=0, t=0.0, arrival_s=0.0)
        with pytest.raises(AttributeError):
            c.seq = 1
