"""Shared-memory reply slab tests: codec, interning, seqlock, no pickling.

The contract under test:

- a :class:`HopReply` round-trips through :meth:`SharedResultSlab.try_write`
  / :meth:`read` bit-exactly (every :class:`FrameResult` field), including
  the degenerate empty reply;
- string interning ships each node id / label **exactly once**: the first
  reply that uses a string returns it from ``take_fresh``-via-``try_write``,
  later replies reusing it return nothing new;
- an oversized reply is *refused* (``try_write`` returns ``None``) so the
  caller falls back to the pipe instead of corrupting the slot;
- the per-slot seqlock turns a torn write (worker died mid-encode) into a
  raised error, never silently wrong data, and :meth:`reset` clears a torn
  slot after a respawn;
- the write/read path performs **zero pickling** (the whole point of the
  slab) — asserted by a pickle-counter tripwire;
- pickling the slab *object* re-attaches to the segment by name without
  claiming ownership (how forked/spawned workers receive it).
"""

import pickle

import pytest

from repro.core.pipeline import FrameResult
from repro.stream import HopReply, SharedResultSlab, StringInterner


def frame(i, label="siren_wail", detected=True):
    return FrameResult(
        frame_index=i,
        label=label,
        confidence=0.5 + 0.01 * i,
        detected=detected,
        azimuth=0.1 * i,
        elevation=-0.05 * i,
    )


def reply_for(nids, frames_per_nid, label="siren_wail"):
    results = {
        nid: [frame(100 * k + i, label=label) for i in range(frames_per_nid)]
        for k, nid in enumerate(nids)
    }
    return HopReply(tuple(nids), results, kernel_s=0.0123)


class TestStringInterner:
    def test_ids_stable_and_fresh_drains(self):
        interner = StringInterner()
        a = interner.intern("node_a")
        b = interner.intern("node_b")
        assert a != b
        assert interner.intern("node_a") == a
        assert interner.take_fresh() == ((a, "node_a"), (b, "node_b"))
        # Reuse mints nothing; a genuinely new string ships once.
        interner.intern("node_a")
        assert interner.take_fresh() == ()
        c = interner.intern("node_c")
        assert interner.take_fresh() == ((c, "node_c"),)


class TestSlabCodec:
    @pytest.fixture()
    def slab(self):
        slab = SharedResultSlab(n_slots=2)
        yield slab
        slab.unlink()

    def round_trip(self, slab, reply, slot=0, interner=None, strings=None):
        interner = interner or StringInterner()
        strings = strings if strings is not None else {}
        fresh = slab.try_write(slot, reply, interner)
        assert fresh is not None
        strings.update(dict(fresh))
        return slab.read(slot, strings)

    def test_multi_node_multi_frame_round_trip(self, slab):
        reply = reply_for(["node_a", "node_b", "node_c"], 4)
        got = self.round_trip(slab, reply)
        assert got == reply  # dataclass equality: nids, every row, kernel_s

    def test_empty_reply_round_trips(self, slab):
        reply = HopReply((), {}, kernel_s=0.5)
        got = self.round_trip(slab, reply)
        assert got == reply

    def test_node_with_no_frames_round_trips(self, slab):
        reply = HopReply(
            ("quiet", "busy"),
            {"quiet": [], "busy": [frame(7, detected=False)]},
            kernel_s=0.0,
        )
        got = self.round_trip(slab, reply)
        assert got == reply

    def test_strings_ship_exactly_once(self, slab):
        interner = StringInterner()
        strings = {}
        first = slab.try_write(0, reply_for(["node_a", "node_b"], 2), interner)
        assert {s for _, s in first} == {"node_a", "node_b", "siren_wail"}
        strings.update(dict(first))
        # Same strings again: nothing new crosses; decode still works from
        # the mirror table alone.
        again = reply_for(["node_a", "node_b"], 3)
        second = slab.try_write(1, again, interner)
        assert second == ()
        assert slab.read(1, strings) == again

    def test_slots_are_independent(self, slab):
        interner = StringInterner()
        strings = {}
        r0 = reply_for(["node_a"], 2)
        r1 = reply_for(["node_b"], 5, label="car_horn")
        strings.update(dict(slab.try_write(0, r0, interner)))
        strings.update(dict(slab.try_write(1, r1, interner)))
        assert slab.read(0, strings) == r0
        assert slab.read(1, strings) == r1

    def test_oversized_reply_is_refused(self):
        slab = SharedResultSlab(n_slots=1, slot_ints=16, slot_floats=16)
        try:
            interner = StringInterner()
            assert slab.try_write(0, reply_for(["node_a"], 64), interner) is None
            # Refusal happens before interning: nothing was minted.
            assert interner.take_fresh() == ()
            # A fitting reply still works in the same slot afterwards.
            small = reply_for(["node_a"], 1)
            fresh = slab.try_write(0, small, interner)
            assert fresh is not None
            assert slab.read(0, dict(fresh)) == small
        finally:
            slab.unlink()

    def test_torn_write_raises_and_reset_clears(self, slab):
        interner = StringInterner()
        strings = dict(slab.try_write(0, reply_for(["node_a"], 1), interner))
        # Simulate a worker dying mid-encode: seqlock word left odd.
        slab._hdr[0][0] |= 1
        with pytest.raises(RuntimeError, match="torn"):
            slab.read(0, strings)
        # Respawn path: reset() clears the torn slot, a fresh write lands.
        slab.reset()
        reply = reply_for(["node_a"], 2)
        fresh = slab.try_write(0, reply, interner)
        strings.update(dict(fresh))
        assert slab.read(0, strings) == reply

    def test_write_over_torn_slot_recovers(self, slab):
        """A new writer must produce a readable slot even when the previous
        writer crashed mid-encode (the force-odd seqlock begin)."""
        interner = StringInterner()
        slab._hdr[0][0] = 7  # crashed predecessor: odd seq word
        reply = reply_for(["node_a"], 1)
        fresh = slab.try_write(0, reply, interner)
        assert slab.read(0, dict(fresh)) == reply

    def test_zero_pickling_on_the_result_path(self, slab, monkeypatch):
        """The headline property: encode + decode never touch pickle."""
        calls = []

        def tripwire(*args, **kwargs):  # pragma: no cover - must not fire
            calls.append(args)
            raise AssertionError("pickle used on the slab result path")

        monkeypatch.setattr(pickle, "dumps", tripwire)
        monkeypatch.setattr(pickle, "loads", tripwire)
        monkeypatch.setattr(pickle, "dump", tripwire)
        monkeypatch.setattr(pickle, "load", tripwire)
        interner = StringInterner()
        reply = reply_for(["node_a", "node_b"], 8)
        fresh = slab.try_write(0, reply, interner)
        assert slab.read(0, dict(fresh)) == reply
        assert calls == []

    def test_validation(self):
        with pytest.raises(ValueError, match="n_slots"):
            SharedResultSlab(n_slots=0)
        with pytest.raises(ValueError, match="too small"):
            SharedResultSlab(slot_ints=1)


class TestSlabAttach:
    def test_pickle_reattaches_without_ownership(self):
        owner = SharedResultSlab(n_slots=2, slot_ints=64, slot_floats=64)
        try:
            interner = StringInterner()
            reply = reply_for(["node_a"], 2)
            strings = dict(owner.try_write(0, reply, interner))
            attached = pickle.loads(pickle.dumps(owner))
            try:
                assert attached.name == owner.name
                assert attached.read(0, strings) == reply
                # Writes through the attachment are visible to the owner.
                other = reply_for(["node_b"], 1)
                strings.update(dict(attached.try_write(1, other, interner)))
                assert owner.read(1, strings) == other
            finally:
                attached.close()  # non-owner: must NOT unlink the segment
            assert owner.read(0, strings) == reply  # segment still alive
        finally:
            owner.unlink()
