"""Integration tests: the nn framework actually learns."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BatchNorm,
    Conv2d,
    CrossEntropyLoss,
    Dense,
    Flatten,
    GlobalAvgPool,
    MaxPool,
    ReLU,
    Sequential,
    Tanh,
)


class TestLearning:
    def test_learns_xor(self):
        x = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
        y = np.array([0, 1, 1, 0])
        model = Sequential(Dense(2, 16, rng=np.random.default_rng(1)), Tanh(), Dense(16, 2))
        loss_fn = CrossEntropyLoss()
        opt = Adam(model.parameters(), lr=0.05)
        for _ in range(300):
            logits = model.forward(x)
            loss_fn.forward(logits, y)
            opt.zero_grad()
            model.backward(loss_fn.backward())
            opt.step()
        pred = np.argmax(model.forward(x), axis=1)
        assert np.all(pred == y)

    def test_linear_regression_recovers_weights(self):
        rng = np.random.default_rng(2)
        true_w = np.array([[2.0], [-3.0]])
        x = rng.standard_normal((200, 2))
        y = x @ true_w
        model = Dense(2, 1, rng=rng)
        opt = Adam([*model.parameters()], lr=0.05)
        for _ in range(400):
            pred = model.forward(x)
            diff = pred - y
            opt.zero_grad()
            model.backward(2 * diff / diff.size)
            opt.step()
        assert np.allclose(model.w.data, true_w, atol=0.01)

    def test_cnn_separates_patterns(self):
        # Vertical vs horizontal stripes: a conv net must separate these.
        rng = np.random.default_rng(3)
        n = 60
        x = np.zeros((n, 1, 8, 8))
        y = np.zeros(n, dtype=np.int64)
        for i in range(n):
            if i % 2 == 0:
                x[i, 0, :, ::2] = 1.0
            else:
                x[i, 0, ::2, :] = 1.0
                y[i] = 1
        x += 0.1 * rng.standard_normal(x.shape)
        model = Sequential(
            Conv2d(1, 6, 3, padding=1, rng=rng),
            BatchNorm(6),
            ReLU(),
            MaxPool(2),
            GlobalAvgPool(),
            Dense(6, 2, rng=rng),
        )
        loss_fn = CrossEntropyLoss()
        opt = Adam(model.parameters(), lr=0.02)
        model.train()
        for _ in range(60):
            logits = model.forward(x)
            loss_fn.forward(logits, y)
            opt.zero_grad()
            model.backward(loss_fn.backward())
            opt.step()
        model.eval()
        acc = float(np.mean(np.argmax(model.forward(x), axis=1) == y))
        assert acc >= 0.95

    def test_loss_decreases(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((64, 10))
        y = (x[:, 0] > 0).astype(np.int64)
        model = Sequential(Dense(10, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng))
        loss_fn = CrossEntropyLoss()
        opt = Adam(model.parameters(), lr=0.01)
        losses = []
        for _ in range(50):
            logits = model.forward(x)
            losses.append(loss_fn.forward(logits, y))
            opt.zero_grad()
            model.backward(loss_fn.backward())
            opt.step()
        assert losses[-1] < 0.5 * losses[0]
