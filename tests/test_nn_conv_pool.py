"""Tests for convolution and pooling layers (gradient checks included)."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool,
    Conv1d,
    Conv2d,
    Conv3d,
    GlobalAvgPool,
    MaxPool,
    ReLU,
    Sequential,
    conv_output_length,
)
from tests.test_nn_layers import check_gradients

RNG = np.random.default_rng(7)


class TestConvOutputLength:
    def test_basic(self):
        assert conv_output_length(8, 3, 1, 0) == 6
        assert conv_output_length(8, 3, 1, 1) == 8
        assert conv_output_length(8, 3, 2, 1) == 4

    def test_collapse_raises(self):
        with pytest.raises(ValueError, match="collapses"):
            conv_output_length(2, 5, 1, 0)


class TestConv1d:
    def test_identity_kernel(self):
        c = Conv1d(1, 1, 1)
        c.w.data[:] = 1.0
        c.b.data[:] = 0.0
        x = RNG.standard_normal((1, 1, 10))
        assert np.allclose(c.forward(x), x)

    def test_moving_sum(self):
        c = Conv1d(1, 1, 3)
        c.w.data[:] = 1.0
        c.b.data[:] = 0.0
        x = np.arange(6.0).reshape(1, 1, 6)
        out = c.forward(x)
        assert np.allclose(out[0, 0], [3.0, 6.0, 9.0, 12.0])

    def test_stride_and_padding_shapes(self):
        c = Conv1d(2, 4, 3, stride=2, padding=1)
        out = c.forward(RNG.standard_normal((2, 2, 9)))
        assert out.shape == (2, 4, 5)

    def test_gradients(self):
        check_gradients(Sequential(Conv1d(2, 3, 3, stride=2, padding=1)), RNG.standard_normal((2, 2, 9)))

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            Conv1d(2, 3, 3).forward(np.ones((1, 4, 9)))


class TestConv2d:
    def test_output_shape(self):
        c = Conv2d(3, 8, 3, stride=1, padding=1)
        out = c.forward(RNG.standard_normal((2, 3, 16, 16)))
        assert out.shape == (2, 8, 16, 16)

    def test_known_convolution(self):
        c = Conv2d(1, 1, 2)
        c.w.data[0, 0] = np.array([[1.0, 0.0], [0.0, 1.0]])
        c.b.data[:] = 0.0
        x = np.arange(9.0).reshape(1, 1, 3, 3)
        out = c.forward(x)
        # windows: [[0,1],[3,4]] -> 0+4 = 4, etc.
        assert np.allclose(out[0, 0], [[4.0, 6.0], [10.0, 12.0]])

    def test_gradients(self):
        check_gradients(Sequential(Conv2d(2, 3, 3, stride=2, padding=1)), RNG.standard_normal((2, 2, 8, 8)))

    def test_bias_applied(self):
        c = Conv2d(1, 2, 1)
        c.w.data[:] = 0.0
        c.b.data = np.array([1.0, -1.0])
        out = c.forward(np.zeros((1, 1, 4, 4)))
        assert np.allclose(out[0, 0], 1.0)
        assert np.allclose(out[0, 1], -1.0)


class TestConv3d:
    def test_output_shape(self):
        c = Conv3d(1, 4, (3, 3, 3), padding=1)
        out = c.forward(RNG.standard_normal((1, 1, 6, 8, 8)))
        assert out.shape == (1, 4, 6, 8, 8)

    def test_gradients(self):
        check_gradients(
            Sequential(Conv3d(2, 2, (2, 3, 3), padding=(0, 1, 1))),
            RNG.standard_normal((2, 2, 4, 5, 5)),
        )

    def test_asymmetric_stride(self):
        c = Conv3d(1, 2, (1, 3, 3), stride=(1, 2, 2), padding=(0, 1, 1))
        out = c.forward(RNG.standard_normal((1, 1, 5, 8, 8)))
        assert out.shape == (1, 2, 5, 4, 4)


class TestPooling:
    def test_maxpool_values(self):
        p = MaxPool(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        assert p.forward(x)[0, 0, 0, 0] == 4.0

    def test_maxpool_gradient_routing(self):
        p = MaxPool(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        p.forward(x)
        g = p.backward(np.ones((1, 1, 1, 1)))
        assert g[0, 0, 1, 1] == 1.0
        assert g.sum() == 1.0

    def test_maxpool_indivisible_raises(self):
        with pytest.raises(ValueError, match="not divisible"):
            MaxPool(2).forward(np.ones((1, 1, 5, 4)))

    def test_maxpool_gradients(self):
        check_gradients(Sequential(MaxPool(2)), RNG.standard_normal((2, 3, 4, 4)))

    def test_maxpool_3d(self):
        p = MaxPool((1, 2, 2))
        out = p.forward(RNG.standard_normal((1, 2, 3, 4, 4)))
        assert out.shape == (1, 2, 3, 2, 2)

    def test_avgpool_values(self):
        p = AvgPool(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        assert p.forward(x)[0, 0, 0, 0] == 2.5

    def test_avgpool_gradients(self):
        check_gradients(Sequential(AvgPool(2)), RNG.standard_normal((2, 3, 4, 4)))

    def test_global_avg_pool(self):
        p = GlobalAvgPool()
        x = np.ones((2, 3, 4, 5))
        out = p.forward(x)
        assert out.shape == (2, 3)
        assert np.allclose(out, 1.0)

    def test_global_avg_pool_gradients(self):
        check_gradients(Sequential(GlobalAvgPool()), RNG.standard_normal((2, 3, 4, 4)))

    def test_1d_pooling(self):
        p = MaxPool(2)
        out = p.forward(RNG.standard_normal((2, 3, 8)))
        assert out.shape == (2, 3, 4)


class TestConvStack:
    def test_cnn_gradient_integration(self):
        model = Sequential(
            Conv2d(1, 4, 3, padding=1),
            ReLU(),
            MaxPool(2),
            Conv2d(4, 8, 3, padding=1),
            ReLU(),
            GlobalAvgPool(),
        )
        check_gradients(model, RNG.standard_normal((2, 1, 8, 8)))
