"""Tests for repro.dsp.filters: FIR design and fractional delays."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.filters import (
    apply_fir,
    fir_from_magnitude,
    fir_lowpass,
    fractional_delay_kernel,
    lagrange_fractional_delay,
    octave_band_centers,
)


class TestOctaveBands:
    def test_doubling(self):
        bands = octave_band_centers(62.5, 5)
        assert np.allclose(bands, [62.5, 125, 250, 500, 1000])

    def test_invalid(self):
        with pytest.raises(ValueError):
            octave_band_centers(-1, 3)


class TestFirFromMagnitude:
    def test_matches_flat_spec(self):
        fs = 16000
        h = fir_from_magnitude(np.array([0.0, 8000.0]), np.array([1.0, 1.0]), 63, fs)
        w = np.abs(np.fft.rfft(h, 1024))
        grid = np.fft.rfftfreq(1024, 1 / fs)
        inner = (grid > 500) & (grid < 7000)
        assert np.allclose(w[inner], 1.0, atol=0.05)

    def test_matches_sloped_spec(self):
        fs = 16000
        freqs = np.array([0.0, 2000.0, 8000.0])
        mags = np.array([1.0, 0.5, 0.1])
        h = fir_from_magnitude(freqs, mags, 101, fs)
        w = np.abs(np.fft.rfft(h, 2048))
        grid = np.fft.rfftfreq(2048, 1 / fs)
        for f_spec, m_spec in [(2000.0, 0.5)]:
            k = np.argmin(np.abs(grid - f_spec))
            assert w[k] == pytest.approx(m_spec, abs=0.08)

    def test_even_taps_rounded_up(self):
        h = fir_from_magnitude(np.array([0.0, 1000.0]), np.array([1.0, 1.0]), 10, 8000)
        assert h.size == 11

    def test_validation(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            fir_from_magnitude(np.array([100.0, 100.0]), np.array([1.0, 1.0]), 31, 8000)
        with pytest.raises(ValueError, match="non-negative"):
            fir_from_magnitude(np.array([0.0, 100.0]), np.array([1.0, -1.0]), 31, 8000)
        with pytest.raises(ValueError):
            fir_from_magnitude(np.array([0.0, 100.0]), np.array([1.0, 1.0]), 1, 8000)


class TestFractionalDelayKernel:
    def test_integer_delay_recovers_shift(self):
        kernel, shift = fractional_delay_kernel(5.0, 31)
        x = np.zeros(64)
        x[10] = 1.0
        y = np.convolve(x, kernel)
        peak = np.argmax(y) + shift
        assert peak == 15

    def test_fractional_delay_interpolates_tone(self):
        fs, f0, d = 8000, 500.0, 3.37
        n = np.arange(256)
        x = np.sin(2 * np.pi * f0 * n / fs)
        kernel, shift = fractional_delay_kernel(d, 31)
        y_full = np.convolve(x, kernel)
        y = y_full[-shift : -shift + x.size] if shift < 0 else y_full[shift:shift + x.size]
        expected = np.sin(2 * np.pi * f0 * (n - d) / fs)
        interior = slice(40, 200)
        assert np.allclose(y[interior], expected[interior], atol=1e-3)

    def test_kernel_sums_to_one(self):
        kernel, _ = fractional_delay_kernel(2.5, 21)
        assert kernel.sum() == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            fractional_delay_kernel(-1.0)
        with pytest.raises(ValueError):
            fractional_delay_kernel(1.0, 4)


class TestLagrange:
    def test_order1_is_linear_interp(self):
        h = lagrange_fractional_delay(0.25, 1)
        assert np.allclose(h, [0.75, 0.25])

    def test_frac_zero_is_identity_tap(self):
        h = lagrange_fractional_delay(0.0, 3)
        assert h[1] == pytest.approx(1.0)
        assert np.allclose(np.delete(h, 1), 0.0, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.0, max_value=0.999), st.sampled_from([1, 3, 5]))
    def test_partition_of_unity(self, frac, order):
        h = lagrange_fractional_delay(frac, order)
        assert np.sum(h) == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.0, max_value=0.999))
    def test_reproduces_polynomial(self, frac):
        # Order-3 Lagrange must be exact on cubic polynomials.
        h = lagrange_fractional_delay(frac, 3)
        n = np.arange(4, dtype=np.float64)
        d = frac + 1.0
        for p in range(4):
            val = np.dot(h, n**p)
            assert val == pytest.approx(d**p, abs=1e-7)

    def test_invalid(self):
        with pytest.raises(ValueError):
            lagrange_fractional_delay(1.0, 3)
        with pytest.raises(ValueError):
            lagrange_fractional_delay(0.5, 0)


class TestLowpassAndApply:
    def test_lowpass_attenuates_high(self):
        fs = 8000
        h = fir_lowpass(1000.0, fs, 101)
        t = np.arange(2048) / fs
        low = apply_fir(np.sin(2 * np.pi * 300 * t), h, zero_phase_pad=True)
        high = apply_fir(np.sin(2 * np.pi * 3000 * t), h, zero_phase_pad=True)
        assert np.std(low[300:-300]) > 10 * np.std(high[300:-300])

    def test_lowpass_dc_gain_unity(self):
        h = fir_lowpass(500.0, 8000)
        assert h.sum() == pytest.approx(1.0)

    def test_apply_fir_identity(self):
        x = np.random.default_rng(0).standard_normal(256)
        assert np.allclose(apply_fir(x, np.array([1.0])), x)

    def test_apply_fir_delay_kernel(self):
        x = np.zeros(64)
        x[5] = 1.0
        y = apply_fir(x, np.array([0.0, 0.0, 1.0]))
        assert np.argmax(y) == 7

    def test_zero_phase_pad_alignment(self):
        x = np.zeros(64)
        x[20] = 1.0
        h = np.zeros(11)
        h[5] = 1.0  # pure group delay of 5
        y = apply_fir(x, h, zero_phase_pad=True)
        assert np.argmax(y) == 20

    def test_invalid_cutoff(self):
        with pytest.raises(ValueError):
            fir_lowpass(5000.0, 8000)
