"""Tests for the feature front-ends (Sec. III survey)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import (
    FRONT_ENDS,
    SpectrogramConfig,
    chroma_filterbank,
    chromagram,
    cqt,
    cqt_frequencies,
    erb_space,
    erb_to_hz,
    extract,
    gammatone_filterbank_coefficients,
    gammatonegram,
    gfcc,
    hz_to_erb,
    hz_to_mel,
    log_mel_spectrogram,
    log_spectrogram,
    mel_filterbank,
    mel_spectrogram,
    mel_to_hz,
    mfcc,
    spectrogram,
)
from repro.features.mfcc import delta
from repro.signals import tone

FS = 8000


@pytest.fixture(scope="module")
def tone_1k():
    return tone(1000.0, 1.0, FS)


class TestSpectrogram:
    def test_shape(self, tone_1k):
        s = spectrogram(tone_1k, FS, SpectrogramConfig(n_fft=256, hop_length=128))
        assert s.shape[0] == 129

    def test_peak_at_tone(self, tone_1k):
        cfg = SpectrogramConfig(n_fft=512)
        s = spectrogram(tone_1k, FS, cfg)
        freqs = np.fft.rfftfreq(512, 1 / FS)
        peak = freqs[np.argmax(s[:, s.shape[1] // 2])]
        assert abs(peak - 1000.0) < FS / 512

    def test_log_max_zero(self, tone_1k):
        ls = log_spectrogram(tone_1k, FS)
        assert ls.max() == pytest.approx(0.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SpectrogramConfig(n_fft=100)  # not a power of two


class TestMel:
    def test_scale_round_trip(self):
        f = np.array([100.0, 1000.0, 3999.0])
        assert np.allclose(mel_to_hz(hz_to_mel(f)), f)

    def test_mel_monotone(self):
        f = np.linspace(0, 4000, 50)
        assert np.all(np.diff(hz_to_mel(f)) > 0)

    def test_filterbank_shape(self):
        fb = mel_filterbank(40, 512, FS)
        assert fb.shape == (40, 257)

    def test_filterbank_nonnegative_and_covering(self):
        fb = mel_filterbank(40, 512, FS, fmin=50.0)
        assert np.all(fb >= 0)
        coverage = fb.sum(axis=0)
        freqs = np.fft.rfftfreq(512, 1 / FS)
        inner = (freqs > 300) & (freqs < 3500)
        assert np.all(coverage[inner] > 0)

    def test_mel_spectrogram_shape(self, tone_1k):
        m = mel_spectrogram(tone_1k, FS, n_mels=32)
        assert m.shape[0] == 32

    def test_log_mel_peak_band(self, tone_1k):
        m = log_mel_spectrogram(tone_1k, FS, n_mels=32)
        mid = m[:, m.shape[1] // 2]
        # 1 kHz sits around mel band 15-20 of 32 at fs 8000
        assert 8 <= int(np.argmax(mid)) <= 24

    def test_invalid_band_edges(self):
        with pytest.raises(ValueError):
            mel_filterbank(10, 512, FS, fmin=5000.0)


class TestMfcc:
    def test_shape(self, tone_1k):
        m = mfcc(tone_1k, FS, n_mfcc=13)
        assert m.shape[0] == 13

    def test_c0_tracks_energy(self):
        quiet = 0.01 * tone(500.0, 1.0, FS)
        loud = tone(500.0, 1.0, FS)
        assert mfcc(loud, FS)[0].mean() > mfcc(quiet, FS)[0].mean()

    def test_n_mfcc_exceeds_mels_raises(self):
        with pytest.raises(ValueError):
            mfcc(np.ones(1000), FS, n_mfcc=50, n_mels=40)

    def test_delta_constant_zero(self):
        feats = np.ones((5, 50))
        d = delta(feats)
        assert np.allclose(d, 0.0)

    def test_delta_linear_ramp(self):
        feats = np.tile(np.arange(50.0), (3, 1))
        d = delta(feats, width=9)
        assert np.allclose(d[:, 10:40], 1.0, atol=1e-9)

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            delta(np.ones((3, 10)), width=4)


class TestGammatone:
    def test_erb_round_trip(self):
        f = np.array([100.0, 1000.0, 4000.0])
        assert np.allclose(erb_to_hz(hz_to_erb(f)), f)

    def test_erb_space_endpoints(self):
        cfs = erb_space(100.0, 3000.0, 16)
        assert cfs[0] == pytest.approx(100.0)
        assert cfs[-1] == pytest.approx(3000.0)
        assert np.all(np.diff(cfs) > 0)

    def test_filter_peaks_at_center(self):
        from scipy.signal import lfilter

        cf = 1000.0
        sections = gammatone_filterbank_coefficients(np.array([cf]), FS)[0]
        t = np.arange(FS) / FS

        def gain(freq):
            y = np.sin(2 * np.pi * freq * t)
            for b, a in sections:
                y = lfilter(b, a, y)
            return np.std(y[FS // 4 :])

        assert gain(cf) > gain(cf * 0.6)
        assert gain(cf) > gain(cf * 1.6)

    def test_unit_gain_at_center(self):
        from scipy.signal import lfilter

        cf = 800.0
        sections = gammatone_filterbank_coefficients(np.array([cf]), FS)[0]
        t = np.arange(FS) / FS
        y = np.sin(2 * np.pi * cf * t)
        for b, a in sections:
            y = lfilter(b, a, y)
        assert np.std(y[FS // 2 :]) == pytest.approx(1 / np.sqrt(2), rel=0.05)

    def test_gammatonegram_shape(self, tone_1k):
        g = gammatonegram(tone_1k, FS, n_bands=24)
        assert g.shape[0] == 24

    def test_gammatonegram_peak_band(self, tone_1k):
        g = gammatonegram(tone_1k, FS, n_bands=24, fmin=100.0)
        cfs = erb_space(100.0, 0.95 * FS / 2, 24)
        band = int(np.argmax(g[:, g.shape[1] // 2]))
        assert abs(cfs[band] - 1000.0) < 250.0

    def test_invalid_center_freqs(self):
        with pytest.raises(ValueError):
            gammatone_filterbank_coefficients(np.array([5000.0]), FS)


class TestGfcc:
    def test_shape(self, tone_1k):
        g = gfcc(tone_1k, FS, n_gfcc=13, n_bands=24)
        assert g.shape[0] == 13

    def test_too_many_coeffs_raises(self):
        with pytest.raises(ValueError):
            gfcc(np.ones(4000), FS, n_gfcc=30, n_bands=24)


class TestCqt:
    def test_frequencies_geometric(self):
        f = cqt_frequencies(24, 55.0, 12)
        assert f[12] == pytest.approx(110.0)

    def test_shape(self, tone_1k):
        c = cqt(tone_1k, FS, n_bins=36, fmin=110.0)
        assert c.shape[0] == 36

    def test_peak_bin_at_tone(self):
        x = tone(440.0, 1.0, FS)
        c = cqt(x, FS, n_bins=36, fmin=110.0)
        freqs = cqt_frequencies(36, 110.0)
        k = int(np.argmax(c[:, c.shape[1] // 2]))
        assert abs(np.log2(freqs[k] / 440.0)) < 0.1

    def test_above_nyquist_raises(self):
        with pytest.raises(ValueError, match="Nyquist"):
            cqt(np.ones(4000), FS, n_bins=80, fmin=110.0)


class TestChroma:
    def test_filterbank_rows(self):
        fb = chroma_filterbank(2048, FS)
        assert fb.shape == (12, 1025)

    def test_octave_invariance(self):
        a440 = chromagram(tone(440.0, 1.0, FS), FS)
        a880 = chromagram(tone(880.0, 1.0, FS), FS)
        mid = a440.shape[1] // 2
        assert int(np.argmax(a440[:, mid])) == int(np.argmax(a880[:, mid]))

    def test_normalized_frames(self, tone_1k):
        c = chromagram(tone_1k, FS)
        assert c.max() <= 1.0 + 1e-9


class TestExtractDispatcher:
    @pytest.mark.parametrize("name", FRONT_ENDS)
    def test_all_front_ends_run(self, name, tone_1k):
        out = extract(name, tone_1k[:4000], FS)
        assert out.ndim == 2
        assert out.shape[0] >= 4
        assert np.all(np.isfinite(out))

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown front-end"):
            extract("plp", np.ones(100), FS)


class TestBatchedFrontEnd:
    def test_mel_filterbank_cached_and_read_only(self):
        a = mel_filterbank(40, 512, FS)
        b = mel_filterbank(40, 512, FS)
        assert a is b  # memoized coefficient table
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0, 0] = 1.0
        assert mel_filterbank(40, 512, FS, fmin=50.0) is not a

    def test_spectrogram_batch_matches_loop(self):
        from repro.features import spectrogram, spectrogram_batch

        x = np.random.default_rng(0).standard_normal((3, 4000))
        batched = spectrogram_batch(x, FS)
        for row, ref in zip(batched, (spectrogram(r, FS) for r in x)):
            assert np.allclose(row, ref)

    def test_log_mel_batch_matches_loop(self):
        from repro.features import log_mel_spectrogram, log_mel_spectrogram_batch

        x = np.random.default_rng(1).standard_normal((4, 4000))
        batched = log_mel_spectrogram_batch(x, FS, n_mels=32)
        assert batched.shape[0] == 4
        for row, ref in zip(batched, (log_mel_spectrogram(r, FS, n_mels=32) for r in x)):
            assert np.allclose(row, ref)

    def test_log_mel_batch_silence(self):
        from repro.features import log_mel_spectrogram_batch

        x = np.zeros((2, 4000))
        batched = log_mel_spectrogram_batch(x, FS, n_mels=16, floor_db=-80.0)
        assert np.allclose(batched, -80.0)

    def test_feature_front_end_batched_path_matches(self):
        from repro.sed.models import FeatureFrontEnd

        x = np.random.default_rng(2).standard_normal((5, 4000))
        front = FeatureFrontEnd("log_mel", FS, n_frames=16, n_mels=16)
        batched = front(x)
        per_clip = np.concatenate([front(w) for w in x])
        assert batched.shape == (5, 1, 16, 16)
        assert np.allclose(batched, per_clip)
