"""Tests for the operator IR, roofline model, cost model, and profiler."""

import numpy as np
import pytest

from repro.hw import (
    CGRA_16x16,
    CORTEX_M7,
    RASPI4,
    DeviceModel,
    IRGraph,
    OpSpec,
    attainable_gflops,
    dsp_op,
    estimate_cost,
    lower_module,
    op_cost,
    place_op,
    profile_model,
    roofline_report,
    time_callable,
)
from repro.nn import Conv2d, Dense, Flatten, MaxPool, ReLU, Sequential


def simple_graph():
    ir = IRGraph("g")
    ir.add_op(dsp_op("a", "fft", flops=1000.0, n_in=100, n_out=100))
    ir.add_op(dsp_op("b", "filterbank", flops=500.0, n_in=100, n_out=10), deps=["a"])
    ir.add_op(dsp_op("c", "elementwise", flops=10.0, n_in=10, n_out=10), deps=["b"])
    return ir


class TestOpSpec:
    def test_arithmetic_intensity(self):
        op = OpSpec("x", "dense", flops=800.0, bytes_read=300.0, bytes_written=100.0)
        assert op.arithmetic_intensity == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OpSpec("x", "dense", flops=-1.0, bytes_read=0.0, bytes_written=0.0)


class TestIRGraph:
    def test_topological_order(self):
        ir = simple_graph()
        names = [o.name for o in ir.ops()]
        assert names.index("a") < names.index("b") < names.index("c")

    def test_totals(self):
        ir = simple_graph()
        assert ir.total_flops() == pytest.approx(1510.0)
        assert ir.total_params() == 0

    def test_duplicate_name_raises(self):
        ir = simple_graph()
        with pytest.raises(ValueError, match="duplicate"):
            ir.add_op(dsp_op("a", "fft", flops=1.0, n_in=1, n_out=1))

    def test_unknown_dep_raises(self):
        ir = IRGraph()
        with pytest.raises(ValueError, match="unknown dependency"):
            ir.add_op(dsp_op("x", "fft", flops=1.0, n_in=1, n_out=1), deps=["nope"])

    def test_bottleneck_ranking(self):
        ir = simple_graph()
        assert ir.bottleneck(1)[0].name == "a"

    def test_critical_path_linear_chain(self):
        ir = simple_graph()
        assert ir.critical_path() == ["a", "b", "c"]

    def test_critical_path_diamond(self):
        ir = IRGraph()
        ir.add_op(dsp_op("s", "fft", flops=1.0, n_in=1, n_out=1))
        ir.add_op(dsp_op("big", "fft", flops=100.0, n_in=1, n_out=1), deps=["s"])
        ir.add_op(dsp_op("small", "fft", flops=1.0, n_in=1, n_out=1), deps=["s"])
        ir.add_op(dsp_op("t", "fft", flops=1.0, n_in=1, n_out=1), deps=["big", "small"])
        assert ir.critical_path() == ["s", "big", "t"]


class TestLowering:
    def test_lower_sequential(self):
        model = Sequential(
            Conv2d(1, 4, 3, padding=1), ReLU(), MaxPool(2), Flatten(), Dense(4 * 4 * 4, 3)
        )
        ir = lower_module(model, (1, 8, 8))
        kinds = [op.kind for op in ir.ops()]
        assert kinds == ["conv2d", "activation", "pool", "reshape", "dense"]

    def test_conv_flops_formula(self):
        model = Sequential(Conv2d(2, 4, 3))
        ir = lower_module(model, (2, 10, 10))
        conv = ir.ops()[0]
        # out 8x8x4, 2*Cin*k*k per output element
        assert conv.flops == pytest.approx(2 * 8 * 8 * 4 * 2 * 9)

    def test_param_counts_match_model(self):
        model = Sequential(Dense(10, 5), ReLU(), Dense(5, 2))
        ir = lower_module(model, (10,))
        assert ir.total_params() == model.n_parameters()

    def test_wider_model_more_flops(self):
        small = lower_module(Sequential(Dense(10, 8)), (10,))
        big = lower_module(Sequential(Dense(10, 64)), (10,))
        assert big.total_flops() > small.total_flops()


class TestRoofline:
    def test_ridge_point(self):
        assert RASPI4.ridge_point == pytest.approx(3.0)

    def test_attainable_caps_at_peak(self):
        assert attainable_gflops(1000.0, RASPI4) == RASPI4.peak_gflops

    def test_memory_bound_region(self):
        assert attainable_gflops(0.5, RASPI4) == pytest.approx(2.0)

    def test_place_op_classification(self):
        mem_op = OpSpec("m", "fft", flops=100.0, bytes_read=1000.0, bytes_written=1000.0)
        cmp_op = OpSpec("c", "dense", flops=1e6, bytes_read=100.0, bytes_written=100.0)
        assert place_op(mem_op, RASPI4).bound == "memory"
        assert place_op(cmp_op, RASPI4).bound == "compute"

    def test_report_sorted_by_time(self):
        report = roofline_report(simple_graph(), RASPI4)
        assert len(report) == 3

    def test_device_validation(self):
        with pytest.raises(ValueError):
            DeviceModel("bad", peak_gflops=0.0, mem_bandwidth_gbps=1.0)
        with pytest.raises(ValueError):
            DeviceModel("bad", peak_gflops=1.0, mem_bandwidth_gbps=1.0,
                        idle_power_w=5.0, active_power_w=1.0)


class TestCostModel:
    def test_latency_includes_overhead(self):
        op = dsp_op("t", "fft", flops=1.0, n_in=1, n_out=1)
        cost = op_cost(op, RASPI4)
        assert cost.latency_s >= RASPI4.op_overhead_us * 1e-6
        assert cost.bound == "overhead"

    def test_compute_bound_latency(self):
        op = OpSpec("c", "dense", flops=12e9, bytes_read=8.0, bytes_written=8.0)
        cost = op_cost(op, RASPI4)
        assert cost.latency_s == pytest.approx(1.0, rel=0.01)
        assert cost.bound == "compute"

    def test_report_totals(self):
        report = estimate_cost(simple_graph(), RASPI4)
        assert report.latency_s == pytest.approx(sum(c.latency_s for c in report.per_op))
        assert report.latency_ms == pytest.approx(report.latency_s * 1e3)

    def test_slower_device_slower(self):
        ir = simple_graph()
        assert estimate_cost(ir, CORTEX_M7).latency_s > estimate_cost(ir, CGRA_16x16).latency_s

    def test_bottleneck(self):
        report = estimate_cost(simple_graph(), RASPI4)
        names = [c.op_name for c in report.bottleneck(2)]
        assert len(names) == 2


class TestProfiler:
    def test_time_callable_positive(self):
        mean, std = time_callable(lambda: sum(range(1000)), repeats=3)
        assert mean > 0 and std >= 0

    def test_profile_model_layers(self):
        model = Sequential(Dense(32, 16), ReLU(), Dense(16, 4))
        report = profile_model(model, (32,), repeats=2, warmup=1)
        assert len(report.layers) == 3
        assert report.total_s == pytest.approx(sum(t.mean_s for t in report.layers))

    def test_bigger_layer_slower(self):
        model = Sequential(Dense(16, 8), Dense(8, 512), Dense(512, 512))
        report = profile_model(model, (16,), repeats=3, warmup=1)
        assert report.layers[2].mean_s > report.layers[0].mean_s

    def test_bottleneck_validation(self):
        model = Sequential(Dense(4, 4))
        report = profile_model(model, (4,), repeats=1)
        with pytest.raises(ValueError):
            report.bottleneck(0)
