"""Process-parallel runtime tests: shared rings, pacer, budgets, identity.

The contract under test, in layers:

- :class:`SharedRingBuffer` must be behaviourally indistinguishable from
  :class:`RingBuffer` (same pops, same overflow/drop accounting) — the
  parallel runtime swaps one for the other and nothing downstream may
  notice;
- the :class:`Pacer` backpressure policy widens on overrun, shrinks on
  headroom, and never leaves its configured bounds; the debounced
  :class:`OverrunPolicy` turns its records into sustained-overrun alerts;
- :class:`ParallelFleetStream` produces **bit-identical** fused tracks to
  the serial :class:`FleetStream` and the offline run, for workers 0 and 1
  (multi-worker counts in the ``parallel``-marked class) and under any
  adaptive hop-batch schedule the pacer might choose.
"""

import os
import signal

import numpy as np
import pytest

from repro.acoustics.trajectory import LinearTrajectory
from repro.core import OverrunPolicy, PipelineConfig
from repro.fleet import (
    CorridorScene,
    CorridorStream,
    FleetScheduler,
    FleetStream,
    OracleDetector,
    Vehicle,
    fleet_report,
    fuse_fleet,
    place_corridor_nodes,
    synthesize_corridor,
)
from repro.signals import synthesize_siren
from repro.stream import (
    NodeIngest,
    Pacer,
    PacerConfig,
    ParallelFleetStream,
    RingBuffer,
    SharedRingBuffer,
    StageBudget,
    format_stage_summary,
    WorkerCrashed,
    parallel_supported,
    summarize_budgets,
)
from repro.stream.source import RecordingChunkSource

FS = 8000.0

needs_processes = pytest.mark.skipif(
    parallel_supported() is not None,
    reason=f"process runtime unavailable: {parallel_supported()}",
)


# --------------------------------------------------------------------------
# SharedRingBuffer: parity with RingBuffer
# --------------------------------------------------------------------------


class TestSharedRingBuffer:
    def test_randomized_parity_with_ring_buffer(self):
        """Same push/pop sequence → same frames, same accounting."""
        rng = np.random.default_rng(7)
        plain = RingBuffer(2, 600)
        shared = SharedRingBuffer(2, 600)
        try:
            for _ in range(200):
                if rng.random() < 0.6:
                    n = int(rng.integers(1, 700))  # sometimes > capacity
                    chunk = rng.standard_normal((2, n))
                    assert shared.push(chunk) == plain.push(chunk)
                else:
                    max_frames = None if rng.random() < 0.5 else int(rng.integers(0, 4))
                    a = plain.pop_frames(128, 64, max_frames=max_frames)
                    b = shared.pop_frames(128, 64, max_frames=max_frames)
                    assert np.array_equal(a, b)
                assert shared.available == plain.available
                assert shared.dropped_samples == plain.dropped_samples
                assert shared.total_pushed == plain.total_pushed
        finally:
            shared.unlink()

    def test_overflow_drops_oldest_and_counts(self):
        ring = SharedRingBuffer(1, 100)
        try:
            ring.push(np.arange(80, dtype=np.float64)[None, :])
            dropped = ring.push(np.arange(80, 140, dtype=np.float64)[None, :])
            assert dropped == 40  # 80 + 60 - 100
            assert ring.dropped_samples == 40
            assert ring.available == 100
            # The oldest 40 samples were overwritten: the ring now starts at 40.
            frames = ring.pop_frames(100, 100)
            assert frames.shape == (1, 1, 100)
            assert frames[0, 0, 0] == 40.0
            assert frames[0, 0, -1] == 139.0
        finally:
            ring.unlink()

    def test_attach_sees_producer_writes(self):
        owner = SharedRingBuffer(2, 256)
        try:
            chunk = np.arange(2 * 64, dtype=np.float64).reshape(2, 64)
            owner.push(chunk)
            consumer = SharedRingBuffer.attach(owner.name, 2, 256)
            assert consumer.available == 64
            assert consumer.total_pushed == 64
            frames = consumer.pop_frames(64, 64)
            assert np.array_equal(frames[0], chunk)
            # The consumer's pop advanced the shared header: the owner sees it.
            assert owner.available == 0
            consumer.close()
        finally:
            owner.unlink()

    def test_reset_clears_shared_header(self):
        ring = SharedRingBuffer(1, 64)
        try:
            ring.push(np.ones((1, 80)))
            assert ring.dropped_samples > 0
            ring.reset()
            assert ring.available == 0
            assert ring.dropped_samples == 0
            assert ring.total_pushed == 0
        finally:
            ring.unlink()

    def test_unlink_after_close_destroys_segment(self):
        ring = SharedRingBuffer(1, 64)
        name = ring.name
        ring.close()
        ring.unlink()  # must still destroy the named segment
        with pytest.raises(FileNotFoundError):
            SharedRingBuffer.attach(name, 1, 64)

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedRingBuffer(0, 64)
        with pytest.raises(ValueError):
            SharedRingBuffer(1, 0)

    def test_ingest_accepts_injected_shared_ring(self):
        ring = SharedRingBuffer(1, 4096)
        try:
            data = np.random.default_rng(0).standard_normal((1, 2048))
            src = RecordingChunkSource(data, FS, chunk_samples=256)
            ing = NodeIngest(src, 512, 256, ring=ring)
            assert ing.ring is ring
            ing.pull(None)
            frames = ing.pop_frames()
            assert frames.shape[0] == 1 + (2048 - 512) // 256
        finally:
            ring.unlink()

    def test_ingest_rejects_channel_mismatch(self):
        ring = SharedRingBuffer(2, 4096)
        try:
            src = RecordingChunkSource(np.zeros((1, 1024)), FS, chunk_samples=256)
            with pytest.raises(ValueError, match="channels"):
                NodeIngest(src, 512, 256, ring=ring)
        finally:
            ring.unlink()


# --------------------------------------------------------------------------
# Pacer backpressure policy
# --------------------------------------------------------------------------


class TestPacer:
    def test_widens_on_overrun_up_to_max(self):
        p = Pacer(0.032, hop_batch=4, config=PacerConfig(max_batch=32))
        assert p.batch == 4
        p.observe(wall_s=1.0, hops_advanced=4)  # budget 0.128 s: overrun
        assert p.batch == 8
        p.observe(1.0, 8)
        assert p.batch == 16
        p.observe(1.0, 16)
        assert p.batch == 32
        p.observe(2.0, 32)  # still over budget (1.024 s), but already capped
        assert p.batch == 32
        stats = p.stats()
        assert stats.n_overruns == 4
        assert stats.n_widenings == 3
        assert stats.max_batch_used == 32

    def test_shrinks_on_headroom_down_to_min(self):
        p = Pacer(0.032, hop_batch=8, config=PacerConfig(min_batch=2, max_batch=64))
        p.observe(0.0001, 8)  # far below shrink_headroom * budget
        assert p.batch == 4
        p.observe(0.0001, 4)
        assert p.batch == 2
        p.observe(0.0001, 2)
        assert p.batch == 2  # floored
        assert p.stats().n_shrinks == 2
        assert p.stats().min_batch_used == 2

    def test_hysteresis_band_holds_batch(self):
        p = Pacer(0.032, hop_batch=8)
        budget = 8 * 0.032
        p.observe(0.75 * budget, 8)  # inside (shrink_headroom, 1.0): hold
        assert p.batch == 8
        assert p.stats().n_overruns == 0
        assert p.stats().n_shrinks == 0

    def test_zero_hops_not_judged(self):
        p = Pacer(0.032, hop_batch=8)
        p.observe(10.0, 0)
        assert p.stats().n_steps == 0
        assert p.batch == 8

    def test_records_feed_overrun_policy(self):
        p = Pacer(0.032, hop_batch=4, config=PacerConfig(max_batch=8))
        for _ in range(5):
            p.observe(1.0, 4)
        alerts = OverrunPolicy(on_steps=3, off_steps=2).process(p.stats().records)
        assert [a.kind for a in alerts] == ["overrun"]
        assert alerts[0].step_index == 2  # third consecutive overrun

    def test_paced_wait_sleeps_on_monotonic_clock(self):
        now = [100.0]
        slept = []
        p = Pacer(
            0.032,
            hop_batch=8,
            config=PacerConfig(pace=True),
            clock=lambda: now[0],
            sleep=slept.append,
        )
        # First call anchors the epoch so this step is due exactly now: the
        # next step (one 0.256 s batch later) is due 0.256 s from here, not
        # 0.512 s — the old `origin = now` anchoring ran one batch late.
        assert p.wait(0.256) == 0.0
        now[0] += 0.1  # 0.1 s of work; next step due at epoch + 0.512
        delay = p.wait(0.512)
        assert delay == pytest.approx(0.156)
        assert slept == [pytest.approx(0.156)]
        # A late step (stream time already passed) does not sleep.
        now[0] += 10.0
        assert p.wait(0.768) == 0.0

    def test_paced_wait_reanchors_after_stall(self):
        now = [50.0]
        slept = []
        p = Pacer(
            0.032,
            hop_batch=8,
            config=PacerConfig(pace=True, resync_slip_s=0.5),
            clock=lambda: now[0],
            sleep=slept.append,
        )
        p.wait(0.256)
        now[0] += 3.0  # long stall: far past the next due time
        assert p.wait(0.512) == 0.0  # late, never sleeps...
        assert p.n_resyncs == 1  # ...but accepts the slip and re-anchors
        now[0] += 0.02
        # Pacing resumes immediately from the new epoch: the next batch is
        # due 0.256 s after the re-anchor, not after a multi-second free-run.
        assert p.wait(0.768) == pytest.approx(0.236)
        assert slept == [pytest.approx(0.236)]

    def test_paced_wait_small_slip_catches_up_without_resync(self):
        now = [10.0]
        p = Pacer(
            0.032,
            hop_batch=8,
            config=PacerConfig(pace=True, resync_slip_s=0.5),
            clock=lambda: now[0],
            sleep=lambda s: None,
        )
        p.wait(0.256)
        now[0] += 0.4  # one slow step, within the slip tolerance
        assert p.wait(0.512) == 0.0
        assert p.n_resyncs == 0  # catch up by free-running, keep the epoch

    def test_unpaced_wait_never_sleeps(self):
        slept = []
        p = Pacer(0.032, hop_batch=8, sleep=slept.append)
        assert p.wait(1.0) == 0.0
        assert slept == []

    def test_validation(self):
        with pytest.raises(ValueError):
            Pacer(0.0)
        with pytest.raises(ValueError):
            Pacer(0.032, hop_batch=0)
        with pytest.raises(ValueError):
            PacerConfig(min_batch=0)
        with pytest.raises(ValueError):
            PacerConfig(min_batch=4, max_batch=2)
        with pytest.raises(ValueError):
            PacerConfig(widen_factor=1.0)
        with pytest.raises(ValueError):
            PacerConfig(shrink_headroom=1.5)
        with pytest.raises(ValueError):
            PacerConfig(resync_slip_s=0.0)


class TestOverrunPolicy:
    def test_debounces_single_overruns(self):
        policy = OverrunPolicy(on_steps=3, off_steps=2)
        assert policy.update(1.0, 0.5) is None
        assert policy.update(0.1, 0.5) is None  # streak broken
        assert policy.update(1.0, 0.5) is None
        assert policy.update(1.0, 0.5) is None
        alert = policy.update(1.0, 0.5)
        assert alert is not None and alert.kind == "overrun"
        assert policy.active

    def test_recovers_after_off_steps(self):
        policy = OverrunPolicy(on_steps=1, off_steps=2)
        assert policy.update(1.0, 0.5).kind == "overrun"
        assert policy.update(0.1, 0.5) is None
        alert = policy.update(0.1, 0.5)
        assert alert is not None and alert.kind == "recovered"
        assert not policy.active

    def test_validation(self):
        with pytest.raises(ValueError):
            OverrunPolicy(on_steps=0)
        policy = OverrunPolicy()
        with pytest.raises(ValueError):
            policy.update(-1.0, 0.5)
        with pytest.raises(ValueError):
            policy.update(1.0, 0.0)


# --------------------------------------------------------------------------
# Stage budgets
# --------------------------------------------------------------------------


class TestStageBudget:
    def test_detect_to_update_excludes_capture(self):
        b = StageBudget(
            capture_ms=64.0,
            delivery_ms=10.0,
            ingest_ms=1.0,
            kernel_ms=5.0,
            fusion_ms=0.5,
            emit_ms=0.1,
        )
        assert b.detect_to_update_ms == pytest.approx(16.6)
        assert b.stage_ms("capture") == 64.0
        with pytest.raises(ValueError):
            b.stage_ms("teleport")

    def test_summary_and_format(self):
        budgets = [
            StageBudget(64.0, float(d), 1.0, 5.0, 0.5, 0.1) for d in range(10)
        ]
        summary = summarize_budgets(budgets)
        assert set(summary) == {
            "capture", "delivery", "ingest", "kernel", "fusion", "emit",
            "detect_to_update",
        }
        p50, p95 = summary["delivery"]
        assert p50 == pytest.approx(4.5)
        assert p95 > p50
        line = format_stage_summary(summary)
        assert "detect→update" in line and "p50/p95" in line
        assert summarize_budgets([]) == {}
        assert "(no updates yet)" in format_stage_summary({})


# --------------------------------------------------------------------------
# ParallelFleetStream: determinism across execution modes
# --------------------------------------------------------------------------


def corridor(n_nodes=3, duration=1.0):
    rng = np.random.default_rng(11)
    vehicles = [
        Vehicle(
            "siren_wail",
            LinearTrajectory([-25.0, 8.0, 0.8], [25.0, 8.0, 0.8], 15.0),
            synthesize_siren("wail", duration, FS, rng=rng),
        )
    ]
    nodes = place_corridor_nodes(n_nodes, 18.0)
    recording = synthesize_corridor(CorridorScene(vehicles, nodes), FS)
    return nodes, recording


def config():
    return PipelineConfig(fs=FS, n_azimuth=36, n_elevation=2)


def scheduler(nodes, cfg, n_shards=2):
    return FleetScheduler(
        nodes, cfg, detector=OracleDetector("siren_wail"), n_shards=n_shards
    )


def assert_frame_streams_equal(ref, got):
    assert ref.keys() == got.keys()
    for nid in ref:
        assert len(ref[nid]) == len(got[nid])
        for r1, r2 in zip(ref[nid], got[nid]):
            assert r1.frame_index == r2.frame_index
            assert r1.label == r2.label
            assert r1.detected == r2.detected
            assert r1.confidence == r2.confidence
            for u, v in ((r1.azimuth, r2.azimuth), (r1.elevation, r2.elevation)):
                assert (np.isnan(u) and np.isnan(v)) or u == v


def assert_tracks_identical(ref_tracks, tracks):
    """Same association decisions, bit-identical states."""
    assert len(ref_tracks) == len(tracks)
    for t1, t2 in zip(ref_tracks, tracks):
        assert t1.track_id == t2.track_id
        assert t1.label == t2.label
        assert t1.hits == t2.hits
        assert t1.nodes == t2.nodes
        assert t1.confirmed == t2.confirmed
        assert t1.confirmed_frame == t2.confirmed_frame
        assert t1.n_triangulated == t2.n_triangulated
        assert t1.n_multilaterated == t2.n_multilaterated
        assert np.array_equal(t1.frames(), t2.frames())
        assert np.array_equal(t1.positions(), t2.positions())


@pytest.fixture(scope="module")
def scene():
    return corridor()


@pytest.fixture(scope="module")
def serial_reference(scene):
    """Serial FleetStream session + offline run on the same scene."""
    nodes, recording = scene
    cfg = config()
    offline = scheduler(nodes, cfg).run(recording)
    offline_tracks = fuse_fleet(
        offline.node_results, nodes, frame_period=cfg.frame_period_s
    )
    stream = CorridorStream(recording, chunk_samples=256)
    serial = scheduler(nodes, cfg).stream(stream.sources(), hop_batch=8).run()
    return offline, offline_tracks, serial


def parallel_run(scene, **kwargs):
    nodes, recording = scene
    cfg = config()
    sched = scheduler(nodes, cfg)
    sources = CorridorStream(recording, chunk_samples=256).sources()
    kwargs.setdefault("hop_batch", 8)
    with ParallelFleetStream(sched, sources, **kwargs) as session:
        return session.run()


class TestParallelEquivalence:
    def test_workers0_matches_serial_and_offline(self, scene, serial_reference):
        offline, offline_tracks, serial = serial_reference
        result = parallel_run(scene, workers=0)
        assert_frame_streams_equal(offline.node_results, result.node_results)
        assert_frame_streams_equal(serial.node_results, result.node_results)
        assert_tracks_identical(offline_tracks, result.tracks)
        assert_tracks_identical(serial.tracks, result.tracks)
        assert result.workers == 0

    @needs_processes
    def test_one_forked_worker_matches_serial(self, scene, serial_reference):
        _, offline_tracks, serial = serial_reference
        result = parallel_run(scene, workers=1)
        assert_frame_streams_equal(serial.node_results, result.node_results)
        assert_tracks_identical(offline_tracks, result.tracks)
        assert result.workers == 1

    def test_adaptive_batch_schedule_is_invariant(self, scene, serial_reference):
        """Whatever batch sizes the pacer picks, the tracks cannot change."""
        _, offline_tracks, serial = serial_reference
        nodes, recording = scene
        cfg = config()
        sched = scheduler(nodes, cfg)
        sources = CorridorStream(recording, chunk_samples=256).sources()
        rng = np.random.default_rng(3)
        with ParallelFleetStream(sched, sources, hop_batch=8, workers=0) as session:
            while not session.done:
                # Emulate an aggressively adapting pacer: any schedule of
                # effective batches must leave the results untouched.
                for pacer in session._pacers:
                    pacer._batch = int(rng.integers(1, 13))
                session.step()
            result = session.finalize()
        assert_frame_streams_equal(serial.node_results, result.node_results)
        assert_tracks_identical(offline_tracks, result.tracks)

    def test_every_update_carries_a_stage_budget(self, scene):
        result = parallel_run(scene, workers=0)
        assert result.updates, "dense scene must emit updates"
        assert len(result.stage_budgets) == len(result.updates)
        cfg = config()
        for update, budget in zip(result.updates, result.stage_budgets):
            assert update.budget is budget
            assert budget.capture_ms == pytest.approx(cfg.capture_latency_s * 1e3)
            for stage in ("delivery", "ingest", "kernel", "fusion", "emit"):
                assert budget.stage_ms(stage) >= 0.0
            assert budget.detect_to_update_ms == pytest.approx(
                budget.delivery_ms
                + budget.ingest_ms
                + budget.kernel_ms
                + budget.fusion_ms
                + budget.emit_ms
            )
        summary = result.stage_summary()
        assert "detect_to_update" in summary
        assert result.detect_to_update.p95_s > 0.0

    def test_pacer_stats_reach_fleet_report(self, scene):
        result = parallel_run(scene, workers=0)
        per_node = result.node_pacer_stats()
        assert set(per_node) == set(result.node_results)
        report = fleet_report(
            result.tracks,
            result.as_run_result(),
            frame_period=config().frame_period_s,
            pacer_stats=per_node,
        )
        for health in report.node_health:
            assert health.peak_hop_batch >= 1
            assert health.n_overruns >= 0
            assert health.n_overrun_alerts >= 0

    def test_scheduler_stream_dispatch(self, scene):
        nodes, recording = scene
        sched = scheduler(nodes, config())
        sources = CorridorStream(recording, chunk_samples=256).sources()
        assert isinstance(sched.stream(sources), FleetStream)
        sources = CorridorStream(recording, chunk_samples=256).sources()
        session = sched.stream(sources, workers=0)
        assert isinstance(session, ParallelFleetStream)
        session.close()
        with pytest.raises(ValueError, match="workers"):
            sched.stream(sources, pacer=PacerConfig())

    def test_step_after_close_raises(self, scene):
        nodes, recording = scene
        sched = scheduler(nodes, config())
        sources = CorridorStream(recording, chunk_samples=256).sources()
        session = ParallelFleetStream(sched, sources, workers=0)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.step()

    def test_validation(self, scene):
        nodes, recording = scene
        sched = scheduler(nodes, config())
        sources = CorridorStream(recording, chunk_samples=256).sources()
        with pytest.raises(ValueError):
            ParallelFleetStream(sched, sources, hop_batch=0)
        with pytest.raises(ValueError):
            ParallelFleetStream(sched, sources, workers=-1)
        with pytest.raises(ValueError, match="missing sources"):
            ParallelFleetStream(sched, {})


class TestPacedSessions:
    """Real-time pacing at the session level, on a fake clock.

    ``pace=True`` turns the free-running replay into a capture-clocked
    session: every step waits until its hop batch is *due*.  On a machine
    with headroom the pacer then rides ``min_batch``, and the dominant
    detect→update stage — delivery, the stream-clock wait between a
    frame's capture and its pop — collapses from a whole batch to a hop.
    """

    def paced_session(self, scene, pacer, now, slept):
        nodes, recording = scene
        sched = scheduler(nodes, config())
        sources = CorridorStream(recording, chunk_samples=256).sources()

        def sleep(s):
            slept.append(s)
            now[0] += s  # sleeping advances the fake capture clock

        return ParallelFleetStream(
            sched,
            sources,
            hop_batch=8,
            workers=0,
            pacer=pacer,
            clock=lambda: now[0],
            sleep=sleep,
        )

    def test_rides_min_batch_and_shrinks_delivery(self, scene):
        now, slept = [0.0], []
        cfg = PacerConfig(pace=True, min_batch=1)
        with self.paced_session(scene, cfg, now, slept) as session:
            result = session.run()
        for stats in result.pacer_stats.values():
            # Headroom (near-zero wall per step on the fake-clocked replay)
            # shrinks 8 → 4 → 2 → 1 and stays there.
            assert stats.n_shrinks >= 3
            assert stats.min_batch_used == 1
            assert stats.n_resyncs == 0
        assert slept, "a paced session with headroom must actually wait"
        deliveries = [b.delivery_ms for b in result.stage_budgets]
        assert len(deliveries) >= 9
        third = len(deliveries) // 3
        head, tail = max(deliveries[:third]), max(deliveries[-third:])
        # Early updates rode 8-hop batches (frames wait up to ~256 ms for
        # their pop); once the batch reaches 1 the wait is a hop or two.
        assert tail < head
        assert tail <= 3 * config().frame_period_s * 1e3

    def test_origin_reanchors_after_stall(self, scene):
        now, slept = [0.0], []
        cfg = PacerConfig(pace=True, min_batch=8, max_batch=8, resync_slip_s=0.5)
        session = self.paced_session(scene, cfg, now, slept)
        try:
            session.step()  # first step anchors the epoch
            session.step()  # second step paces normally
            n_before = len(slept)
            assert n_before > 0
            now[0] += 5.0  # multi-second stall, far past the slip tolerance
            session.step()  # late: free-runs, accepts the slip, re-anchors
            while not session.done:
                session.step()
            result = session.finalize()
        finally:
            session.close()
        for stats in result.pacer_stats.values():
            assert stats.n_resyncs == 1
        # Pacing resumed from the new epoch after the stall: later steps
        # waited again instead of free-running the rest of the session.
        assert len(slept) > n_before


@pytest.mark.parallel
class TestMultiWorker:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_multi_worker_matches_serial(self, scene, serial_reference, workers):
        _, offline_tracks, serial = serial_reference
        result = parallel_run(scene, workers=workers)
        assert_frame_streams_equal(serial.node_results, result.node_results)
        assert_tracks_identical(offline_tracks, result.tracks)
        # Clamped to the shard count when fewer shards than workers exist.
        assert result.workers == min(workers, len(result.shards))

    def test_worker_death_raises_workercrashed_naming_shard(self, scene):
        """A killed shard worker must surface as a typed, attributed error
        — not a hang on the pipe — naming the shards that died with it."""
        nodes, recording = scene
        sched = scheduler(nodes, config())
        sources = CorridorStream(recording, chunk_samples=256).sources()
        session = ParallelFleetStream(sched, sources, hop_batch=8, workers=2)
        try:
            session.step()  # both workers alive and stepping
            victim = session._pool._procs[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()
            with pytest.raises(WorkerCrashed) as excinfo:
                while not session.done:
                    session.step()
            err = excinfo.value
            assert err.worker_index == 0
            assert err.shards  # the dead worker's shards are named
            assert all(s.startswith("fleet/shard") for s in err.shards)
            assert "died" in str(err) and "fleet/shard" in str(err)
        finally:
            session.close()


# --------------------------------------------------------------------------
# FleetScheduler: persistent executor
# --------------------------------------------------------------------------


class TestPersistentExecutor:
    def test_executor_survives_across_runs(self, scene):
        nodes, recording = scene
        sched = FleetScheduler(
            nodes,
            config(),
            detector=OracleDetector("siren_wail"),
            n_shards=2,
            use_threads=True,
        )
        assert sched._executor is None  # lazy: no pool before the first run
        first = sched.run(recording)
        pool = sched._executor
        assert pool is not None
        second = sched.run(recording)
        assert sched._executor is pool  # reused, not rebuilt per call
        assert_frame_streams_equal(first.node_results, second.node_results)
        sched.close()
        assert sched._executor is None
        sched.close()  # idempotent

    def test_context_manager_closes(self, scene):
        nodes, recording = scene
        with FleetScheduler(
            nodes,
            config(),
            detector=OracleDetector("siren_wail"),
            n_shards=2,
            use_threads=True,
        ) as sched:
            threaded = sched.run(recording)
            assert sched._executor is not None
        assert sched._executor is None
        reference = FleetScheduler(
            nodes, config(), detector=OracleDetector("siren_wail"), n_shards=2
        ).run(recording)
        assert_frame_streams_equal(reference.node_results, threaded.node_results)
