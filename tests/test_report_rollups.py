"""Edge cases of the health-rollup layers.

Covers the corners the happy-path suites skip over:

- :func:`repro.fleet.report.fleet_report` fed ``pacer_stats`` that are
  empty (a session that never advanced a hop), missing for some nodes, or
  all-overrun;
- :meth:`repro.core.alerts.OverrunPolicy.process` on empty, ragged and
  alternating sample streams, and the overrun/recovered *ordering* that
  downstream rollup counters depend on;
- the city rollup's step-wise worst-of merge and how recovered alerts ride
  along in :class:`repro.city.report.CorridorHealth` without inflating the
  ``n_overrun_alerts`` counters.
"""

import pytest

from repro.city import CitySupervisor, default_scenario
from repro.city.report import _stepwise_worst
from repro.core import OverrunPolicy, PipelineConfig
from repro.fleet import (
    CorridorStream,
    FleetScheduler,
    OracleDetector,
    fleet_report,
)
from repro.stream import PacerStats, ParallelFleetStream


def empty_stats():
    return PacerStats(
        n_steps=0, n_overruns=0, n_widenings=0, n_shrinks=0,
        min_batch_used=8, max_batch_used=0, records=(),
    )


def stats_from_records(records):
    n_over = sum(1 for w, b, _ in records if w > b)
    return PacerStats(
        n_steps=len(records),
        n_overruns=n_over,
        n_widenings=0,
        n_shrinks=0,
        min_batch_used=min((r[2] for r in records), default=0),
        max_batch_used=max((r[2] for r in records), default=0),
        records=tuple(records),
    )


@pytest.fixture(scope="module")
def small_run():
    """One tiny paced fleet session whose run result the rollup tests
    re-report under fabricated pacer stats."""
    from repro.city import corridor_rngs, render_corridor

    scn = default_scenario(1, duration_s=0.4, n_nodes=2, seed=3)
    spec = scn.corridors[0]
    rng = corridor_rngs(scn)[spec.corridor_id]
    recording = render_corridor(spec, scn, rng)
    config = PipelineConfig(fs=scn.fs, localizer=scn.localizer,
                            n_azimuth=scn.n_azimuth, n_elevation=scn.n_elevation)
    sched = FleetScheduler(
        recording.scene.nodes, config, detector=OracleDetector("siren_wail")
    )
    feed = CorridorStream(recording, chunk_samples=config.hop_length, rng=rng)
    with ParallelFleetStream(sched, feed.sources(), hop_batch=8, workers=0) as s:
        result = s.run()
    sched.close()
    return config, result


class TestFleetReportPacerStats:
    def test_empty_stats_roll_up_to_zeros(self, small_run):
        """A session that never advanced a hop must not crash the report
        (OverrunPolicy would reject budget<=0 samples — there are none)."""
        config, result = small_run
        node_ids = sorted(result.node_results)
        report = fleet_report(
            result.tracks,
            result.as_run_result(),
            frame_period=config.frame_period_s,
            pacer_stats={nid: empty_stats() for nid in node_ids},
        )
        for h in report.node_health:
            assert h.n_overruns == 0
            assert h.n_overrun_alerts == 0
            assert h.peak_hop_batch == 0

    def test_nodes_without_stats_stay_zero(self, small_run):
        """pacer_stats may cover a subset of nodes; the rest default."""
        config, result = small_run
        node_ids = sorted(result.node_results)
        covered = node_ids[0]
        stats = stats_from_records([(1.0, 0.1, 8)] * 4)  # all overrun
        report = fleet_report(
            result.tracks,
            result.as_run_result(),
            frame_period=config.frame_period_s,
            pacer_stats={covered: stats},
        )
        by_id = {h.node_id: h for h in report.node_health}
        assert by_id[covered].n_overruns == 4
        assert by_id[covered].n_overrun_alerts == 1  # debounced: one alert
        assert by_id[covered].peak_hop_batch == 8
        for nid in node_ids[1:]:
            assert by_id[nid].n_overruns == 0
            assert by_id[nid].n_overrun_alerts == 0

    def test_all_overrun_stream_alerts_once_per_episode(self, small_run):
        """Sustained overrun = ONE debounced alert, however long it lasts;
        a recovery and relapse opens a second episode."""
        config, result = small_run
        records = (
            [(1.0, 0.1, 8)] * 10          # episode 1: sustained overrun
            + [(0.01, 0.1, 8)] * 6        # recovery (>= off_steps inside)
            + [(1.0, 0.1, 8)] * 4         # episode 2
        )
        stats = stats_from_records(records)
        report = fleet_report(
            result.tracks,
            result.as_run_result(),
            frame_period=config.frame_period_s,
            pacer_stats={nid: stats for nid in result.node_results},
        )
        for h in report.node_health:
            assert h.n_overruns == 14  # raw count keeps every miss
            assert h.n_overrun_alerts == 2  # debounced: one per episode


class TestOverrunPolicyProcess:
    def test_empty_and_extra_fields(self):
        policy = OverrunPolicy()
        assert policy.process([]) == []
        # PacerStats records carry (wall, budget, batch): the batch column
        # must be ignored, not parsed as part of the judgement.
        alerts = OverrunPolicy(on_steps=1, off_steps=1).process(
            [(1.0, 0.5, 999), (0.1, 0.5, 999)]
        )
        assert [a.kind for a in alerts] == ["overrun", "recovered"]

    def test_alternating_never_alerts(self):
        policy = OverrunPolicy(on_steps=2, off_steps=2)
        samples = [(1.0, 0.5), (0.1, 0.5)] * 10
        assert policy.process(samples) == []

    def test_transitions_strictly_alternate_and_order(self):
        """Counters downstream assume overrun/recovered strictly alternate
        starting with an overrun, in step order."""
        policy = OverrunPolicy(on_steps=2, off_steps=2)
        samples = (
            [(1.0, 0.5)] * 3 + [(0.1, 0.5)] * 3
            + [(1.0, 0.5)] * 2 + [(0.1, 0.5)] * 2
        )
        alerts = policy.process(samples)
        kinds = [a.kind for a in alerts]
        assert kinds == ["overrun", "recovered", "overrun", "recovered"]
        steps = [a.step_index for a in alerts]
        assert steps == sorted(steps)
        assert all(a.budget_s > 0 for a in alerts)

    def test_invalid_sample_raises(self):
        with pytest.raises(ValueError):
            OverrunPolicy().process([(1.0, 0.0)])
        with pytest.raises(ValueError):
            OverrunPolicy().process([(-1.0, 0.5)])


class TestStepwiseWorst:
    def test_max_duration_min_budget_per_step(self):
        a = [(1.0, 0.5), (0.2, 0.5)]
        b = [(0.3, 0.4), (0.9, 0.6)]
        merged = _stepwise_worst([a, b])
        assert merged == [(1.0, 0.4), (0.9, 0.5)]

    def test_ragged_streams_contribute_while_they_ran(self):
        a = [(1.0, 0.5)]
        b = [(0.3, 0.4), (0.9, 0.6), (0.1, 0.2)]
        merged = _stepwise_worst([a, b])
        assert merged == [(1.0, 0.4), (0.9, 0.6), (0.1, 0.2)]

    def test_empty(self):
        assert _stepwise_worst([]) == []
        assert _stepwise_worst([[], []]) == []


class TestRecoveredAlertsInCityRollup:
    def test_recovered_alerts_ride_along_without_inflating_counters(self):
        """CorridorHealth.alerts keeps the full transition feed (overrun
        AND recovered, in order); the n_overrun_alerts counters — corridor
        and city level — count only the overrun transitions."""
        scn = default_scenario(2, duration_s=0.4, n_nodes=2, seed=11)
        with CitySupervisor(scn, workers=0) as sup:
            sup.run()
            # Re-roll the report with a policy that alerts instantly and
            # recovers instantly, so both transition kinds appear.
            from repro.city.report import city_report

            twitchy = lambda: OverrunPolicy(on_steps=1, off_steps=1)
            report = city_report(
                sup.manager.sessions.values(),
                pool_workers=0,
                overrun_policy_factory=twitchy,
            )
        for row in report.corridors:
            kinds = [a.kind for a in row.alerts]
            assert row.n_overrun_alerts == kinds.count("overrun")
            # Strict alternation: a recovered alert only ever follows an
            # overrun, so counting "overrun" counts episodes.
            for prev, cur in zip(kinds, kinds[1:]):
                assert prev != cur
        city_kinds = [a.kind for a in report.city_alerts]
        assert report.n_city_overrun_alerts == city_kinds.count("overrun")
        for prev, cur in zip(city_kinds, city_kinds[1:]):
            assert prev != cur
