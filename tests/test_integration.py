"""End-to-end integration tests: simulate -> detect -> localize -> track."""

import numpy as np
import pytest

from repro.acoustics import LinearTrajectory, MicrophoneArray, RoadAcousticsSimulator, Scene
from repro.core import AcousticPerceptionPipeline, PipelineConfig
from repro.sed import (
    DatasetConfig,
    SedCnnConfig,
    TrainConfig,
    accuracy,
    build_sed_cnn,
    dataset_arrays,
    generate_dataset,
    predict,
    train_classifier,
)
from repro.sed.models import FeatureFrontEnd
from repro.signals import synthesize_siren
from repro.ssl import DoaGrid, FastSrpPhat, angular_error_deg, azel_to_unit, track_sequence

FS = 8000.0
MICS = np.array(
    [[0.15, 0.15, 1.0], [0.15, -0.15, 1.0], [-0.15, -0.15, 1.0], [-0.15, 0.15, 1.0]]
)


class TestDetectionEndToEnd:
    def test_cnn_learns_simulated_events(self):
        cfg = DatasetConfig(n_samples=110, duration=1.0, fs=FS, snr_range_db=(5.0, 15.0))
        x, y, _ = dataset_arrays(generate_dataset(cfg, seed=0))
        fe = FeatureFrontEnd("log_mel", FS, n_frames=32, n_mels=32)
        maps = fe(x)
        model = build_sed_cnn(SedCnnConfig(base_channels=6, n_blocks=2))
        history = train_classifier(
            model,
            maps[:88],
            y[:88],
            config=TrainConfig(epochs=15, batch_size=16, lr=3e-3, seed=0),
            x_val=maps[88:],
            y_val=y[88:],
        )
        # Well above the 20% chance level on easy SNRs.
        assert history["val_accuracy"][-1] >= 0.5

    def test_low_snr_harder_than_high_snr(self):
        fe = FeatureFrontEnd("log_mel", FS, n_frames=32, n_mels=32)
        model = build_sed_cnn(SedCnnConfig(base_channels=6, n_blocks=2))
        easy_cfg = DatasetConfig(n_samples=90, duration=1.0, fs=FS, snr_range_db=(5.0, 15.0))
        x, y, _ = dataset_arrays(generate_dataset(easy_cfg, seed=1))
        maps = fe(x)
        train_classifier(
            model, maps, y, config=TrainConfig(epochs=15, batch_size=16, lr=3e-3, seed=1)
        )
        hard_cfg = DatasetConfig(n_samples=40, duration=1.0, fs=FS, snr_range_db=(-25.0, -15.0))
        xh, yh, _ = dataset_arrays(generate_dataset(hard_cfg, seed=2))
        easy_cfg2 = DatasetConfig(n_samples=40, duration=1.0, fs=FS, snr_range_db=(5.0, 15.0))
        xe, ye, _ = dataset_arrays(generate_dataset(easy_cfg2, seed=3))
        acc_hard = accuracy(yh, predict(model, fe(xh)))
        acc_easy = accuracy(ye, predict(model, fe(xe)))
        assert acc_easy > acc_hard


class TestLocalizationEndToEnd:
    def test_tracks_moving_siren(self):
        fs = 16000.0
        # Compact array: siren harmonics are narrowband, so wide spacings
        # would spatially alias the GCC phase (aliasing at c / 2d).
        mics = MICS.copy()
        mics[:, :2] *= 0.3
        # Siren drives past the array left to right at 30 m lateral offset.
        traj = LinearTrajectory([-40.0, 30.0, 1.0], [40.0, 30.0, 1.0], speed=20.0)
        scene = Scene(traj, MicrophoneArray(mics), surface=None)
        sim = RoadAcousticsSimulator(scene, fs, air_absorption=False, interpolation="linear")
        sig = synthesize_siren("wail", 4.0, fs)
        received = sim.simulate(sig)
        grid = DoaGrid(n_azimuth=72, n_elevation=1, el_min=0.0, el_max=0.0)
        loc = FastSrpPhat(mics, fs, grid=grid, n_fft=2048)
        frame, hop = 1024, 4096
        azs, times = [], []
        for start in range(8192, received.shape[1] - frame, hop):
            res = loc.localize(received[:, start : start + frame])
            azs.append(res.azimuth)
            times.append((start + frame / 2) / fs)
        azs = np.asarray(azs)
        # True azimuths (ignore propagation delay; source far away).
        truth = []
        for t in times:
            p = traj.position(t)
            truth.append(np.arctan2(p[1], p[0]))
        truth = np.asarray(truth)
        err = np.abs(np.degrees((azs - truth + np.pi) % (2 * np.pi) - np.pi))
        # Median error within a few grid cells (5 deg cells).
        assert np.median(err) < 15.0
        # Azimuth sweeps right-to-left as the car passes (decreasing here).
        assert azs[0] > azs[-1]

    def test_tracker_smooths_srp_sequence(self):
        rng = np.random.default_rng(0)
        truth = np.linspace(2.5, 0.5, 50)
        noisy = truth + 0.2 * rng.standard_normal(50)
        states = track_sequence(noisy, measurement_noise=0.2)
        smoothed = np.array([s.azimuth for s in states])
        assert np.abs(smoothed[10:] - truth[10:]).mean() < np.abs(noisy[10:] - truth[10:]).mean()


class TestPipelineOnSimulatedScene:
    def test_pipeline_reports_emergency_when_trained(self):
        fs = 16000.0
        cfg = PipelineConfig(fs=fs, frame_length=512, hop_length=256, n_azimuth=24, n_elevation=2)
        from repro.nn import Dense, Sequential

        class OracleDetector(Sequential):
            """Stands in for a trained detector: flags high in-band energy."""

            def __init__(self):
                super().__init__(Dense(cfg.n_mels, 5))

            def forward(self, x):
                out = np.full((x.shape[0], 5), -5.0)
                # Siren energy raises mid-band log-mel values.
                score = x[:, 10:30].mean(axis=1)
                out[:, 1] = np.where(score > 0, 8.0, -8.0)
                out[:, 4] = np.where(score > 0, -8.0, 8.0)
                return out

        pipeline = AcousticPerceptionPipeline(MICS, cfg, detector=OracleDetector())
        traj = LinearTrajectory([20.0, 20.0, 1.0], [-20.0, 20.0, 1.0], speed=15.0)
        scene = Scene(traj, MicrophoneArray(MICS), surface=None)
        sim = RoadAcousticsSimulator(scene, fs, air_absorption=False, interpolation="linear")
        received = sim.simulate(synthesize_siren("yelp", 1.5, fs))
        results = pipeline.process_signal(received)
        detected = [r for r in results if r.detected]
        assert len(detected) > len(results) // 4
        tracked_az = [r.azimuth for r in detected[5:]]
        assert all(np.isfinite(a) for a in tracked_az)
