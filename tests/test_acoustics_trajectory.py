"""Tests for repro.acoustics.trajectory."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustics.trajectory import (
    BezierTrajectory,
    CircularTrajectory,
    LinearTrajectory,
    StaticPosition,
    WaypointTrajectory,
)


class TestStatic:
    def test_position_constant(self):
        tr = StaticPosition([1.0, 2.0, 3.0])
        assert np.allclose(tr.position(0.0), tr.position(10.0))

    def test_vectorized(self):
        tr = StaticPosition([1.0, 2.0, 3.0])
        pos = tr.positions(np.linspace(0, 1, 5))
        assert pos.shape == (5, 3)
        assert np.all(pos == [1.0, 2.0, 3.0])

    def test_bad_point(self):
        with pytest.raises(ValueError):
            StaticPosition([1.0, 2.0])


class TestLinear:
    def test_speed(self):
        tr = LinearTrajectory([0, 0, 1], [100, 0, 1], speed=10.0)
        assert np.allclose(tr.position(1.0), [10.0, 0.0, 1.0])

    def test_continues_past_end(self):
        tr = LinearTrajectory([0, 0, 1], [10, 0, 1], speed=10.0)
        assert tr.position(2.0)[0] == pytest.approx(20.0)

    def test_vectorized_matches_scalar(self):
        tr = LinearTrajectory([0, 1, 1], [3, 4, 1], speed=2.0)
        t = np.array([0.0, 0.5, 1.3])
        vec = tr.positions(t)
        for i, ti in enumerate(t):
            assert np.allclose(vec[i], tr.position(ti))

    def test_measured_speed(self):
        tr = LinearTrajectory([0, 0, 1], [100, 0, 1], speed=13.0)
        assert tr.speed(1.0) == pytest.approx(13.0, rel=1e-3)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError, match="coincide"):
            LinearTrajectory([1, 1, 1], [1, 1, 1], speed=5.0)
        with pytest.raises(ValueError):
            LinearTrajectory([0, 0, 0], [1, 0, 0], speed=0.0)


class TestWaypoint:
    def test_passes_through_waypoints(self):
        wps = [[0, 0, 1], [10, 0, 1], [10, 10, 1]]
        tr = WaypointTrajectory(wps, speed=10.0)
        assert np.allclose(tr.position(1.0), [10, 0, 1])
        assert np.allclose(tr.position(2.0), [10, 10, 1])

    def test_stops_at_end(self):
        tr = WaypointTrajectory([[0, 0, 1], [10, 0, 1]], speed=10.0)
        assert np.allclose(tr.position(100.0), [10, 0, 1])

    def test_total_time(self):
        tr = WaypointTrajectory([[0, 0, 1], [10, 0, 1], [10, 10, 1]], speed=5.0)
        assert tr.total_time == pytest.approx(4.0)

    def test_duplicate_waypoints_raise(self):
        with pytest.raises(ValueError, match="distinct"):
            WaypointTrajectory([[0, 0, 1], [0, 0, 1]], speed=1.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            WaypointTrajectory([[0, 0, 1]], speed=1.0)


class TestCircular:
    def test_radius_preserved(self):
        tr = CircularTrajectory([0, 0, 1], radius=5.0, speed=2.0)
        pos = tr.positions(np.linspace(0, 20, 50))
        r = np.linalg.norm(pos[:, :2], axis=1)
        assert np.allclose(r, 5.0)

    def test_speed_on_circle(self):
        tr = CircularTrajectory([0, 0, 1], radius=5.0, speed=3.0)
        assert tr.speed(1.0) == pytest.approx(3.0, rel=1e-3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            CircularTrajectory([0, 0, 1], radius=0.0, speed=1.0)


class TestBezier:
    def test_endpoints(self):
        tr = BezierTrajectory([0, 0, 1], [5, 5, 1], [10, -5, 1], [15, 0, 1], speed=5.0)
        assert np.allclose(tr.position(0.0), [0, 0, 1])
        end_time = tr.length / 5.0
        assert np.allclose(tr.position(end_time + 1.0), [15, 0, 1], atol=1e-6)

    def test_constant_speed_parameterization(self):
        tr = BezierTrajectory([0, 0, 1], [2, 8, 1], [8, -8, 1], [10, 0, 1], speed=4.0)
        t = np.linspace(0.1, tr.length / 4.0 - 0.1, 40)
        pos = tr.positions(t)
        step = np.linalg.norm(np.diff(pos, axis=0), axis=1)
        dt = t[1] - t[0]
        speeds = step / dt
        assert np.all(np.abs(speeds - 4.0) < 0.25)

    def test_straight_line_length(self):
        tr = BezierTrajectory([0, 0, 1], [1, 0, 1], [2, 0, 1], [3, 0, 1], speed=1.0)
        assert tr.length == pytest.approx(3.0, rel=1e-3)

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=0.5, max_value=20.0))
    def test_speed_scaling(self, speed):
        tr = BezierTrajectory([0, 0, 1], [1, 2, 1], [3, 2, 1], [4, 0, 1], speed=speed)
        mid = tr.length / speed / 2.0
        assert tr.speed(mid) == pytest.approx(speed, rel=0.1)
