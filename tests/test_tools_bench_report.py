"""Tests for the bench-trail report tool (``repro.tools.bench_report``)."""

import json
from pathlib import Path

import pytest

from repro.tools.bench_report import (
    check_rows,
    group_rows,
    load_rows,
    main,
    summarize,
)


def _trail(tmp_path, rows, name="trail.json"):
    path = tmp_path / name
    path.write_text(json.dumps(rows))
    return str(path)


ROWS = [
    {"bench": "E1_demo", "wall_ms": 120.0, "speedup": 2.0},
    {"bench": "E1_demo", "wall_ms": 100.0, "speedup": 2.5, "p95_ms": 8.0},
    {"bench": "E2_other", "wall_ms": 50.0, "speedup": 4.0},
]


class TestSummarize:
    def test_latest_and_best_trajectory(self):
        summary = summarize(group_rows(ROWS))
        by_name = {s["bench"]: s for s in summary}
        demo = by_name["E1_demo"]
        assert demo["runs"] == 2
        assert demo["latest_ms"] == 100.0
        assert demo["best_ms"] == 100.0
        assert demo["latest_x"] == 2.5
        assert demo["best_x"] == 2.5
        assert demo["latest_p95_ms"] == 8.0
        assert by_name["E2_other"]["latest_p95_ms"] is None

    def test_benches_sorted(self):
        names = [s["bench"] for s in summarize(group_rows(ROWS))]
        assert names == sorted(names)

    def test_non_finite_values_excluded_from_best(self):
        rows = ROWS + [{"bench": "E1_demo", "wall_ms": float("nan"), "speedup": 9.0}]
        demo = {s["bench"]: s for s in summarize(group_rows(rows))}["E1_demo"]
        assert demo["runs"] == 3
        assert demo["latest_ms"] == 100.0  # NaN wall excluded
        assert demo["best_x"] == 9.0


class TestCheck:
    def test_clean_trail_passes(self, tmp_path, capsys):
        assert main(["--json", _trail(tmp_path, ROWS), "--check"]) == 0
        out = capsys.readouterr().out
        assert "3 rows, 2 benches, 0 problem(s)" in out
        assert "skipped (multi-core only" in out

    def test_missing_file_passes(self, tmp_path, capsys):
        assert main(["--json", str(tmp_path / "absent.json"), "--check"]) == 0
        assert "nothing recorded yet" in capsys.readouterr().out

    def test_corrupt_json_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["--json", str(path), "--check"]) == 1
        assert "broken trail" in capsys.readouterr().err

    def test_non_list_top_level_fails(self, tmp_path):
        path = tmp_path / "obj.json"
        path.write_text('{"bench": "x"}')
        assert main(["--json", str(path), "--check"]) == 1

    def test_non_finite_speedup_fails(self, tmp_path, capsys):
        rows = ROWS + [{"bench": "E3_broken", "wall_ms": 1.0, "speedup": float("inf")}]
        assert main(["--json", _trail(tmp_path, rows), "--check"]) == 1
        assert "non-finite speedup" in capsys.readouterr().err

    def test_missing_keys_fail(self, tmp_path, capsys):
        rows = [{"bench": "E4_half"}]
        assert main(["--json", _trail(tmp_path, rows), "--check"]) == 1
        assert "missing wall_ms, speedup" in capsys.readouterr().err

    def test_check_rows_reports_every_problem(self):
        rows = [
            {"bench": "a", "wall_ms": 1.0, "speedup": float("nan")},
            "not a row",
            {"bench": "b", "wall_ms": 2.0, "speedup": 3.0},
        ]
        problems = check_rows(rows)
        assert len(problems) == 2


class TestReport:
    def test_table_lists_every_bench(self, tmp_path, capsys):
        assert main(["--json", _trail(tmp_path, ROWS)]) == 0
        out = capsys.readouterr().out
        assert "E1_demo" in out and "E2_other" in out
        assert "latest ms" in out and "best x" in out

    def test_malformed_rows_flagged_in_report(self, tmp_path, capsys):
        rows = ROWS + [{"wall_ms": 1.0}]
        assert main(["--json", _trail(tmp_path, rows)]) == 0
        assert "malformed row(s)" in capsys.readouterr().out

    def test_load_rows_rejects_non_list(self, tmp_path):
        path = tmp_path / "obj.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_rows(path)


class TestRepoTrail:
    def test_real_trail_is_healthy(self, capsys):
        """The repo's own recorded trail must pass --check (tier-1 smoke)."""
        trail = Path(__file__).resolve().parents[1] / "BENCH_pipeline.json"
        if not trail.exists():
            pytest.skip("no recorded trail in this checkout")
        assert main(["--json", str(trail), "--check"]) == 0
