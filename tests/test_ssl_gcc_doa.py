"""Tests for GCC-PHAT and the DOA grid utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssl import (
    DoaGrid,
    angular_error_deg,
    azel_to_unit,
    estimate_tdoa,
    gcc_phat,
    gcc_phat_spectrum,
    unit_to_azel,
)

FS = 16000


def delayed_pair(delay_samples, n=2048, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(n + 200)
    x2 = base[100 : 100 + n]
    x1 = base[100 - delay_samples : 100 - delay_samples + n]
    return x1, x2


class TestGccPhat:
    def test_spectrum_unit_magnitude(self):
        x1, x2 = delayed_pair(3)
        spec = gcc_phat_spectrum(x1, x2)
        assert np.allclose(np.abs(spec), 1.0, atol=1e-6)

    def test_integer_delay_recovered(self):
        for d in (-20, -3, 0, 5, 17):
            x1, x2 = delayed_pair(d)
            tau = estimate_tdoa(x1, x2, FS, interp=1)
            assert round(tau * FS) == d

    def test_fractional_delay_subsample_accuracy(self):
        # Bandlimited fractional shift via FFT phase ramp.
        rng = np.random.default_rng(1)
        n = 2048
        x2 = rng.standard_normal(n)
        shift = 4.37
        spec = np.fft.rfft(x2)
        freqs = np.fft.rfftfreq(n)
        x1 = np.fft.irfft(spec * np.exp(-2j * np.pi * freqs * shift), n)
        tau = estimate_tdoa(x1, x2, FS, interp=8)
        assert tau * FS == pytest.approx(shift, abs=0.05)

    def test_max_tau_limits_search(self):
        x1, x2 = delayed_pair(50)
        lags, cc = gcc_phat(x1, x2, FS, max_tau=10 / FS)
        assert np.abs(lags).max() <= 10.5 / FS

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            gcc_phat_spectrum(np.ones(10), np.ones(12))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            gcc_phat(np.ones(16), np.ones(16), 0.0)
        with pytest.raises(ValueError):
            gcc_phat(np.ones(16), np.ones(16), FS, interp=0)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=-30, max_value=30))
    def test_tdoa_sign_convention(self, d):
        x1, x2 = delayed_pair(d, seed=abs(d) + 1)
        tau = estimate_tdoa(x1, x2, FS, interp=2)
        assert round(tau * FS) == d


class TestDirectionConversions:
    def test_azel_to_unit_cardinals(self):
        assert np.allclose(azel_to_unit(0.0, 0.0), [1, 0, 0], atol=1e-12)
        assert np.allclose(azel_to_unit(np.pi / 2, 0.0), [0, 1, 0], atol=1e-12)
        assert np.allclose(azel_to_unit(0.0, np.pi / 2), [0, 0, 1], atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=-3.1, max_value=3.1),
        st.floats(min_value=-1.5, max_value=1.5),
    )
    def test_round_trip(self, az, el):
        u = azel_to_unit(az, el)
        az2, el2 = unit_to_azel(u)
        u2 = azel_to_unit(az2, el2)
        assert np.allclose(u, u2, atol=1e-9)

    def test_unit_norm(self):
        u = azel_to_unit(np.linspace(-3, 3, 10), np.linspace(-1, 1, 10))
        assert np.allclose(np.linalg.norm(u, axis=-1), 1.0)


class TestAngularError:
    def test_zero_for_identical(self):
        u = azel_to_unit(0.3, 0.1)
        assert angular_error_deg(u, u) == pytest.approx(0.0, abs=1e-6)

    def test_orthogonal_is_90(self):
        assert angular_error_deg(np.array([1, 0, 0]), np.array([0, 1, 0])) == pytest.approx(90.0)

    def test_scale_invariant(self):
        a = np.array([2.0, 0, 0])
        b = np.array([0.0, 0, 3.0])
        assert angular_error_deg(a, b) == pytest.approx(90.0)

    def test_zero_vector_raises(self):
        with pytest.raises(ValueError):
            angular_error_deg(np.zeros(3), np.array([1.0, 0, 0]))


class TestDoaGrid:
    def test_sizes(self):
        g = DoaGrid(n_azimuth=36, n_elevation=5)
        assert g.size == 180
        assert g.directions().shape == (180, 3)

    def test_index_round_trip(self):
        g = DoaGrid(n_azimuth=12, n_elevation=3)
        az, el = g.index_to_azel(17)
        dirs = g.directions()
        assert np.allclose(dirs[17], azel_to_unit(az, el))

    def test_single_elevation(self):
        g = DoaGrid(n_azimuth=8, n_elevation=1, el_min=0.0, el_max=0.0)
        assert g.elevations.shape == (1,)
        assert g.elevations[0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DoaGrid(n_azimuth=1)
        with pytest.raises(ValueError):
            DoaGrid(el_min=1.0, el_max=0.5)
        g = DoaGrid(n_azimuth=8, n_elevation=2)
        with pytest.raises(ValueError):
            g.index_to_azel(99)
