"""Tests for the air-absorption and asphalt-reflection models."""

import numpy as np
import pytest

from repro.acoustics.air import (
    Atmosphere,
    air_absorption_coefficient,
    air_absorption_fir,
    speed_of_sound,
)
from repro.acoustics.asphalt import (
    SURFACE_PRESETS,
    RoadSurface,
    asphalt_reflection_fir,
    reflection_magnitude,
)
from repro.dsp.filters import apply_fir


class TestAtmosphere:
    def test_defaults(self):
        atm = Atmosphere()
        assert atm.temperature_k == pytest.approx(293.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            Atmosphere(temperature_c=-80.0)
        with pytest.raises(ValueError):
            Atmosphere(humidity=0.0)
        with pytest.raises(ValueError):
            Atmosphere(pressure_kpa=-1.0)

    def test_speed_of_sound_20c(self):
        assert speed_of_sound(Atmosphere(temperature_c=20.0)) == pytest.approx(343.2, abs=0.5)

    def test_speed_increases_with_temperature(self):
        assert speed_of_sound(Atmosphere(temperature_c=35.0)) > speed_of_sound(
            Atmosphere(temperature_c=5.0)
        )


class TestAbsorptionCoefficient:
    def test_increases_with_frequency(self):
        alpha = air_absorption_coefficient(np.array([100.0, 1000.0, 10000.0]))
        assert alpha[0] < alpha[1] < alpha[2]

    def test_iso_magnitude_1khz(self):
        # ISO 9613-1 at 20 degC / 50% RH gives ~5 dB/km around 1 kHz.
        alpha = air_absorption_coefficient(np.array([1000.0]))[0]
        assert 0.002 < alpha < 0.01  # dB/m

    def test_iso_magnitude_10khz(self):
        # Around 10 kHz the coefficient is on the order of 0.1-0.2 dB/m.
        alpha = air_absorption_coefficient(np.array([10000.0]))[0]
        assert 0.05 < alpha < 0.5

    def test_zero_frequency_zero(self):
        assert air_absorption_coefficient(np.array([0.0]))[0] == 0.0

    def test_negative_frequency_raises(self):
        with pytest.raises(ValueError):
            air_absorption_coefficient(np.array([-1.0]))

    def test_dry_air_absorbs_differently(self):
        f = np.array([4000.0])
        humid = air_absorption_coefficient(f, Atmosphere(humidity=80.0))[0]
        dry = air_absorption_coefficient(f, Atmosphere(humidity=10.0))[0]
        assert humid != pytest.approx(dry, rel=0.01)


class TestAirAbsorptionFir:
    def test_zero_distance_is_identity(self):
        fs = 16000
        h = air_absorption_fir(0.0, fs)
        x = np.random.default_rng(0).standard_normal(512)
        y = apply_fir(x, h, zero_phase_pad=True)
        assert np.allclose(y[50:-50], x[50:-50], atol=0.01)

    def test_longer_distance_attenuates_high_frequencies(self):
        fs = 32000
        t = np.arange(4096) / fs
        hi = np.sin(2 * np.pi * 12000 * t)
        h100 = air_absorption_fir(100.0, fs)
        h500 = air_absorption_fir(500.0, fs)
        e100 = np.std(apply_fir(hi, h100, zero_phase_pad=True)[200:-200])
        e500 = np.std(apply_fir(hi, h500, zero_phase_pad=True)[200:-200])
        assert e500 < e100 < 1.0

    def test_low_frequencies_pass(self):
        fs = 16000
        t = np.arange(4096) / fs
        lo = np.sin(2 * np.pi * 200 * t)
        h = air_absorption_fir(200.0, fs)
        e = np.std(apply_fir(lo, h, zero_phase_pad=True)[200:-200])
        assert e == pytest.approx(np.std(lo[200:-200]), rel=0.1)

    def test_negative_distance_raises(self):
        with pytest.raises(ValueError):
            air_absorption_fir(-1.0, 16000)


class TestRoadSurface:
    def test_presets_exist(self):
        assert {"dense_asphalt", "porous_asphalt", "concrete", "wet_asphalt"} <= set(
            SURFACE_PRESETS
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RoadSurface("bad", absorption=(0.1,) * 7)  # length mismatch
        with pytest.raises(ValueError):
            RoadSurface("bad", absorption=(0.1,) * 7 + (1.2,))

    def test_reflection_magnitude_bounds(self):
        freqs = np.linspace(0, 8000, 100)
        for surface in SURFACE_PRESETS.values():
            r = reflection_magnitude(freqs, surface)
            assert np.all((r > 0) & (r <= 1.0))

    def test_porous_absorbs_more_than_dense(self):
        freqs = np.array([1000.0, 2000.0])
        r_dense = reflection_magnitude(freqs, SURFACE_PRESETS["dense_asphalt"])
        r_porous = reflection_magnitude(freqs, SURFACE_PRESETS["porous_asphalt"])
        assert np.all(r_porous < r_dense)


class TestAsphaltFir:
    def test_dense_asphalt_nearly_transparent(self):
        fs = 16000
        h = asphalt_reflection_fir("dense_asphalt", fs)
        x = np.random.default_rng(1).standard_normal(1024)
        y = apply_fir(x, h, zero_phase_pad=True)
        ratio = np.std(y[100:-100]) / np.std(x[100:-100])
        assert 0.9 < ratio <= 1.01

    def test_porous_attenuates_midband(self):
        fs = 16000
        t = np.arange(4096) / fs
        mid = np.sin(2 * np.pi * 1500 * t)
        h = asphalt_reflection_fir("porous_asphalt", fs)
        e = np.std(apply_fir(mid, h, zero_phase_pad=True)[200:-200])
        assert e < 0.9 * np.std(mid[200:-200])

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown surface preset"):
            asphalt_reflection_fir("gravel", 16000)

    def test_custom_surface_accepted(self):
        surface = RoadSurface("custom", absorption=(0.5,) * 8)
        h = asphalt_reflection_fir(surface, 16000)
        assert h.size == 33
