"""Tests for array topologies, metrics and the geometry assessment."""

import numpy as np
import pytest

from repro.arrays import (
    AssessmentConfig,
    aperture,
    assess_geometry,
    car_corner_array,
    car_roof_array,
    doa_condition_number,
    max_tdoa,
    min_spacing,
    rectangular_array,
    spatial_aliasing_frequency,
    uniform_circular_array,
    uniform_linear_array,
)


class TestTopologies:
    def test_ula_spacing(self):
        pos = uniform_linear_array(4, 0.05)
        assert pos.shape == (4, 3)
        d = np.diff(pos[:, 1])
        assert np.allclose(d, 0.05)

    def test_ula_centered(self):
        pos = uniform_linear_array(5, 0.1, center=(1.0, 2.0, 1.5))
        assert np.allclose(pos.mean(axis=0), [1.0, 2.0, 1.5])

    def test_uca_radius(self):
        pos = uniform_circular_array(8, 0.2)
        r = np.linalg.norm(pos[:, :2] - pos[:, :2].mean(axis=0), axis=1)
        assert np.allclose(r, 0.2)

    def test_grid_count(self):
        assert rectangular_array(3, 4, 0.1).shape == (12, 3)

    def test_car_arrays_above_road(self):
        for pos in (car_roof_array(), car_corner_array()):
            assert np.all(pos[:, 2] > 0)

    def test_car_corner_has_six(self):
        assert car_corner_array().shape == (6, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_linear_array(0, 0.1)
        with pytest.raises(ValueError):
            uniform_circular_array(1, 0.1)
        with pytest.raises(ValueError):
            rectangular_array(2, 2, -0.1)


class TestMetrics:
    def test_aperture_ula(self):
        pos = uniform_linear_array(4, 0.1)
        assert aperture(pos) == pytest.approx(0.3)

    def test_min_spacing(self):
        pos = uniform_linear_array(4, 0.1)
        assert min_spacing(pos) == pytest.approx(0.1)

    def test_aliasing_frequency(self):
        pos = uniform_linear_array(2, 0.1)
        assert spatial_aliasing_frequency(pos) == pytest.approx(343.0 / 0.2)

    def test_max_tdoa(self):
        pos = uniform_linear_array(2, 0.343)
        assert max_tdoa(pos) == pytest.approx(1e-3)

    def test_ula_condition_infinite(self):
        assert doa_condition_number(uniform_linear_array(4, 0.1)) == float("inf")

    def test_uca_condition_isotropic(self):
        cond = doa_condition_number(uniform_circular_array(8, 0.2))
        assert cond == pytest.approx(1.0, abs=0.01)

    def test_needs_two_mics(self):
        with pytest.raises(ValueError):
            aperture(np.array([[0.0, 0.0, 1.0]]))


class TestAssessment:
    def test_uca_beats_tiny_array(self):
        # At low SNR a healthy aperture resolves TDOAs a 2 cm array cannot.
        cfg = AssessmentConfig(n_directions=8, seed=0, snr_db=-12.0)
        big = assess_geometry(uniform_circular_array(6, 0.15, center=(0, 0, 1.0)), cfg)
        small = assess_geometry(uniform_circular_array(3, 0.02, center=(0, 0, 1.0)), cfg)
        assert big.mean_error_deg < small.mean_error_deg

    def test_oversized_aperture_aliases_at_low_snr(self):
        # The E10 crossover: a 0.5 m-spaced array spatially aliases broadband
        # noise (aliasing ~343 Hz), so at low SNR it loses to a compact array.
        cfg = AssessmentConfig(n_directions=8, seed=0, snr_db=-12.0)
        compact = assess_geometry(uniform_circular_array(6, 0.15, center=(0, 0, 1.0)), cfg)
        huge = assess_geometry(uniform_circular_array(6, 0.75, center=(0, 0, 1.0)), cfg)
        assert compact.mean_error_deg <= huge.mean_error_deg

    def test_result_fields(self):
        cfg = AssessmentConfig(n_directions=6, seed=1)
        res = assess_geometry(uniform_circular_array(4, 0.3, center=(0, 0, 1.0)), cfg)
        assert res.errors_deg.shape == (6,)
        assert res.aperture_m == pytest.approx(0.6)
        assert res.median_error_deg <= res.p90_error_deg + 1e-9
        assert np.isfinite(res.mean_error_deg)

    def test_car_corner_reasonable(self):
        cfg = AssessmentConfig(n_directions=6, seed=2, source_distance=40.0)
        res = assess_geometry(car_corner_array(), cfg)
        assert res.mean_error_deg < 20.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AssessmentConfig(n_directions=1)
        with pytest.raises(ValueError):
            AssessmentConfig(source_distance=-1.0)
