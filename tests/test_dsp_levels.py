"""Tests for repro.dsp.levels: RMS, dB conversion, exact SNR mixing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.levels import (
    db_to_linear,
    linear_to_db,
    mix_at_snr,
    normalize_peak,
    rms,
    snr_db,
)


class TestRms:
    def test_constant(self):
        assert rms(np.full(100, 2.0)) == pytest.approx(2.0)

    def test_sine(self):
        t = np.linspace(0, 1, 8000, endpoint=False)
        assert rms(np.sin(2 * np.pi * 100 * t)) == pytest.approx(1 / np.sqrt(2), abs=1e-3)

    def test_empty(self):
        assert rms(np.array([])) == 0.0


class TestDbConversions:
    def test_round_trip(self):
        assert linear_to_db(db_to_linear(-12.5)) == pytest.approx(-12.5)

    def test_zero_floor(self):
        assert linear_to_db(0.0) == -200.0

    def test_factor_of_ten(self):
        assert db_to_linear(20.0) == pytest.approx(10.0)


class TestSnr:
    def test_equal_levels(self):
        x = np.ones(100)
        assert snr_db(x, x) == pytest.approx(0.0)

    def test_silent_noise_inf(self):
        assert snr_db(np.ones(10), np.zeros(10)) == float("inf")


class TestMixAtSnr:
    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=-30.0, max_value=0.0))
    def test_achieved_snr_exact(self, target):
        rng = np.random.default_rng(0)
        sig = np.sin(np.linspace(0, 50, 2000))
        noise = rng.standard_normal(2000)
        mix, gain = mix_at_snr(sig, noise, target)
        achieved = snr_db(sig, gain * noise[: sig.size])
        assert achieved == pytest.approx(target, abs=1e-9)

    def test_noise_tiled_when_short(self):
        sig = np.ones(100)
        noise = np.array([1.0, -1.0])
        mix, _ = mix_at_snr(sig, noise, 0.0)
        assert mix.shape == (100,)

    def test_silent_signal_raises(self):
        with pytest.raises(ValueError, match="silent"):
            mix_at_snr(np.zeros(10), np.ones(10), 0.0)

    def test_silent_noise_raises(self):
        with pytest.raises(ValueError, match="silent"):
            mix_at_snr(np.ones(10), np.zeros(10), 0.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mix_at_snr(np.array([]), np.ones(10), 0.0)


class TestNormalizePeak:
    def test_peak_value(self):
        y = normalize_peak(np.array([0.1, -0.5, 0.2]), peak=0.9)
        assert np.max(np.abs(y)) == pytest.approx(0.9)

    def test_silent_passthrough(self):
        y = normalize_peak(np.zeros(10))
        assert np.all(y == 0.0)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=2, max_size=50))
    def test_idempotent(self, values):
        x = np.asarray(values)
        if np.max(np.abs(x)) == 0:
            return
        once = normalize_peak(x)
        twice = normalize_peak(once)
        assert np.allclose(once, twice)
