"""Tests for sensor-placement optimization and the diffuse noise field."""

import numpy as np
import pytest

from repro.acoustics import diffuse_coherence, diffuse_noise_field
from repro.arrays import (
    PlacementObjective,
    car_candidate_points,
    exhaustive_placement,
    greedy_placement,
    placement_score,
    uniform_circular_array,
    uniform_linear_array,
)


class TestPlacementScore:
    def test_uca_beats_ula(self):
        uca = uniform_circular_array(4, 0.15, center=(0, 0, 1.0))
        ula = uniform_linear_array(4, 0.15)
        assert placement_score(uca) < placement_score(ula)

    def test_aliasing_penalty(self):
        fine = uniform_circular_array(4, 0.08, center=(0, 0, 1.0))
        coarse = uniform_circular_array(4, 1.5, center=(0, 0, 1.0))
        obj = PlacementObjective(target_aliasing_hz=2000.0, aperture_weight=0.0)
        assert placement_score(fine, obj) < placement_score(coarse, obj)

    def test_objective_validation(self):
        with pytest.raises(ValueError):
            PlacementObjective(target_aliasing_hz=0.0)


class TestGreedyPlacement:
    def test_selects_k(self):
        cands = car_candidate_points()
        pos, idx = greedy_placement(cands, 4)
        assert pos.shape == (4, 3)
        assert len(set(idx)) == 4

    def test_greedy_close_to_exhaustive(self):
        cands = car_candidate_points()
        greedy_pos, _ = greedy_placement(cands, 4)
        best_pos, _ = exhaustive_placement(cands, 4)
        g = placement_score(greedy_pos)
        b = placement_score(best_pos)
        assert g <= b + 1.0  # greedy within a small margin of optimal

    def test_avoids_collinear_sets(self):
        # Candidates: a line plus one off-axis point; picking 3 must
        # include the off-axis point to keep the condition number finite.
        cands = np.array(
            [[0, 0, 1.0], [0.1, 0, 1.0], [0.2, 0, 1.0], [0.3, 0, 1.0], [0.15, 0.2, 1.0]]
        )
        pos, idx = greedy_placement(cands, 3)
        assert 4 in idx

    def test_validation(self):
        cands = car_candidate_points()
        with pytest.raises(ValueError):
            greedy_placement(cands, 1)
        with pytest.raises(ValueError):
            greedy_placement(cands, 100)

    def test_exhaustive_guard(self):
        cands = np.random.default_rng(0).uniform(size=(30, 3)) + [0, 0, 1.0]
        with pytest.raises(ValueError, match="combinations"):
            exhaustive_placement(cands, 10, max_combinations=100)


class TestCandidatePoints:
    def test_count_and_height(self):
        pts = car_candidate_points()
        assert pts.shape == (12, 3)
        assert np.all(pts[:, 2] > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            car_candidate_points(length=-1.0)


class TestDiffuseField:
    def test_coherence_diagonal_one(self):
        pos = uniform_circular_array(4, 0.1, center=(0, 0, 1.0))
        gamma = diffuse_coherence(pos, np.array([500.0, 2000.0]))
        for k in range(2):
            assert np.allclose(np.diag(gamma[k]), 1.0)

    def test_coherence_decays_with_distance_and_frequency(self):
        pos = np.array([[0, 0, 1.0], [0.05, 0, 1.0], [0.5, 0, 1.0]])
        gamma = diffuse_coherence(pos, np.array([200.0, 3000.0]))
        # close pair at low frequency: high coherence
        assert gamma[0, 0, 1] > 0.9
        # far pair at high frequency: low coherence
        assert abs(gamma[1, 0, 2]) < 0.2

    def test_field_shape_and_level(self):
        pos = uniform_circular_array(3, 0.1, center=(0, 0, 1.0))
        x = diffuse_noise_field(pos, 0.5, 8000.0, rng=np.random.default_rng(0))
        assert x.shape == (3, 4000)
        assert np.allclose(x.std(axis=1), 1.0, atol=1e-6)

    def test_measured_coherence_matches_model(self):
        fs = 8000.0
        pos = np.array([[0, 0, 1.0], [0.04, 0, 1.0]])
        x = diffuse_noise_field(pos, 8.0, fs, rng=np.random.default_rng(1))
        # Cross-spectral coherence estimate via Welch-style averaging.
        n_fft, hop = 256, 128
        win = np.hanning(n_fft)
        s00 = s11 = s01 = 0.0
        freqs = np.fft.rfftfreq(n_fft, 1 / fs)
        k = np.argmin(np.abs(freqs - 1000.0))
        for start in range(0, x.shape[1] - n_fft, hop):
            f0 = np.fft.rfft(x[0, start : start + n_fft] * win)[k]
            f1 = np.fft.rfft(x[1, start : start + n_fft] * win)[k]
            s00 += abs(f0) ** 2
            s11 += abs(f1) ** 2
            s01 += f0 * np.conj(f1)
        measured = np.real(s01) / np.sqrt(s00 * s11)
        expected = float(np.sinc(2 * 1000.0 * 0.04 / 343.0))
        assert measured == pytest.approx(expected, abs=0.1)

    def test_independent_when_far(self):
        fs = 8000.0
        pos = np.array([[0, 0, 1.0], [5.0, 0, 1.0]])
        x = diffuse_noise_field(pos, 2.0, fs, rng=np.random.default_rng(2))
        corr = np.corrcoef(x[0], x[1])[0, 1]
        assert abs(corr) < 0.1

    def test_validation(self):
        pos = uniform_circular_array(3, 0.1, center=(0, 0, 1.0))
        with pytest.raises(ValueError):
            diffuse_noise_field(pos, 0.0, 8000.0)
        with pytest.raises(ValueError):
            diffuse_noise_field(pos, 1.0, 8000.0, n_fft=100)
