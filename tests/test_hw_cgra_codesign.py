"""Tests for the CGRA fabric/mapper, Pareto utilities, and the DSE loop."""

import numpy as np
import pytest

from repro.hw import (
    CgraFabric,
    DesignPoint,
    PeSpec,
    RASPI4,
    dominates,
    dsp_op,
    estimate_cost,
    evaluate_point,
    hypervolume_2d,
    IRGraph,
    lower_module,
    map_graph,
    pareto_front,
    run_codesign,
    surrogate_error_deg,
)
from repro.nn import Conv2d, Dense, Flatten, ReLU, Sequential


class TestPeSpec:
    def test_support(self):
        assert PeSpec("mac").supports("conv2d")
        assert not PeSpec("mem").supports("conv2d")
        assert PeSpec("alu").supports("activation")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            PeSpec("gpu")


class TestFabric:
    def test_default_heterogeneous(self):
        fab = CgraFabric(8, 8)
        kinds = {pe.kind for pe in fab.pes.values()}
        assert kinds == {"mac", "alu", "mem"}

    def test_homogeneous_pattern(self):
        fab = CgraFabric(4, 4, pe_pattern=PeSpec("mac"))
        assert all(pe.kind == "mac" for pe in fab.pes.values())

    def test_hop_distance(self):
        fab = CgraFabric(4, 4)
        assert fab.hop_distance((0, 0), (3, 3)) == 6

    def test_compute_latency_scales(self):
        fab = CgraFabric(4, 4, clock_mhz=100.0, pe_pattern=PeSpec("mac", ops_per_cycle=2.0))
        assert fab.compute_latency_s((0, 0), 200.0) == pytest.approx(1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            CgraFabric(0, 4)
        fab = CgraFabric(2, 2)
        with pytest.raises(ValueError):
            fab.hop_distance((0, 0), (5, 5))


class TestMapper:
    def _graph(self):
        ir = IRGraph()
        ir.add_op(dsp_op("fft", "fft", flops=1e5, n_in=512, n_out=512))
        ir.add_op(dsp_op("act", "activation", flops=1e3, n_in=512, n_out=512), deps=["fft"])
        ir.add_op(dsp_op("mm", "dense", flops=1e6, n_in=512, n_out=10), deps=["act"])
        return ir

    def test_maps_all_ops(self):
        res = map_graph(self._graph(), CgraFabric(8, 8))
        assert res.ok
        assert len(res.mapped) == 3

    def test_dependencies_respected(self):
        res = map_graph(self._graph(), CgraFabric(8, 8))
        finish = {m.op_name: m.finish_s for m in res.mapped}
        start = {m.op_name: m.start_s for m in res.mapped}
        assert start["act"] >= finish["fft"]
        assert start["mm"] >= finish["act"]

    def test_unsupported_kind_reported(self):
        ir = IRGraph()
        ir.add_op(dsp_op("w", "warp_shuffle", flops=10.0, n_in=1, n_out=1))
        res = map_graph(ir, CgraFabric(4, 4))
        assert not res.ok
        assert "w" in res.unmapped

    def test_parallelism_speeds_up(self):
        ir = self._graph()
        fab = CgraFabric(8, 8)
        slow = map_graph(ir, fab, max_parallel_pes=1)
        fast = map_graph(ir, fab, max_parallel_pes=8)
        assert fast.latency_s < slow.latency_s

    def test_utilization_bounds(self):
        res = map_graph(self._graph(), CgraFabric(8, 8))
        assert 0.0 <= res.utilization <= 1.0

    def test_cgra_beats_mcu_on_nn_graph(self):
        model = Sequential(Conv2d(1, 8, 3, padding=1), ReLU(), Flatten(), Dense(8 * 64, 10))
        ir = lower_module(model, (1, 8, 8))
        from repro.hw import CORTEX_M7

        cgra = map_graph(ir, CgraFabric(16, 16))
        mcu = estimate_cost(ir, CORTEX_M7)
        assert cgra.latency_s < mcu.latency_s


class TestPareto:
    def test_dominates(self):
        assert dominates([1.0, 1.0], [2.0, 2.0])
        assert not dominates([1.0, 3.0], [2.0, 2.0])
        assert not dominates([1.0, 1.0], [1.0, 1.0])

    def test_front_extraction(self):
        pts = np.array([[1, 5], [2, 2], [5, 1], [4, 4], [6, 6]])
        front = set(pareto_front(pts))
        assert front == {0, 1, 2}

    def test_single_point(self):
        assert list(pareto_front(np.array([[1.0, 1.0]]))) == [0]

    def test_hypervolume_unit(self):
        hv = hypervolume_2d(np.array([[1.0, 1.0]]), (2.0, 2.0))
        assert hv == pytest.approx(1.0)

    def test_hypervolume_monotone_in_points(self):
        base = np.array([[1.0, 1.5]])
        more = np.array([[1.0, 1.5], [1.5, 0.5]])
        ref = (2.0, 2.0)
        assert hypervolume_2d(more, ref) > hypervolume_2d(base, ref)

    def test_point_beyond_reference_ignored(self):
        assert hypervolume_2d(np.array([[3.0, 3.0]]), (2.0, 2.0)) == 0.0


class TestSurrogate:
    def test_smaller_model_higher_error(self):
        base = DesignPoint()
        small = DesignPoint(base_channels=8)
        assert surrogate_error_deg(small) > surrogate_error_deg(base)

    def test_coarser_map_higher_error(self):
        assert surrogate_error_deg(DesignPoint(map_azimuth=12)) > surrogate_error_deg(
            DesignPoint(map_azimuth=24)
        )

    def test_aggressive_quant_penalized(self):
        assert surrogate_error_deg(DesignPoint(quant_bits=4)) > surrogate_error_deg(
            DesignPoint(quant_bits=8)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DesignPoint(quant_bits=7)
        with pytest.raises(ValueError):
            DesignPoint(prune_ratio=0.99)


class TestEvaluatePoint:
    def test_latency_positive(self):
        ev = evaluate_point(DesignPoint(), sequence_length=4)
        assert ev.latency_ms > 0
        assert ev.n_params > 0

    def test_pruning_reduces_params_and_latency(self):
        dense = evaluate_point(DesignPoint(), sequence_length=4)
        pruned = evaluate_point(DesignPoint(prune_ratio=0.4), sequence_length=4)
        assert pruned.n_params < dense.n_params
        assert pruned.latency_ms < dense.latency_ms

    def test_quantization_shrinks_bytes(self):
        fp32 = evaluate_point(DesignPoint(), sequence_length=4)
        int8 = evaluate_point(DesignPoint(quant_bits=8), sequence_length=4)
        assert int8.model_bytes == pytest.approx(fp32.model_bytes / 4.0)


class TestCodesignLoop:
    @pytest.fixture(scope="class")
    def result(self):
        return run_codesign(DesignPoint(base_channels=16, n_blocks=2), sequence_length=4)

    def test_latency_improves(self, result):
        assert result.final.latency_ms < result.baseline.latency_ms
        assert result.speedup > 1.0

    def test_error_budget_respected(self, result):
        assert result.final.error_deg - result.baseline.error_deg <= 2.0 + 1e-9

    def test_monotone_latency_over_steps(self, result):
        lat = [result.baseline.latency_ms] + [s.evaluated.latency_ms for s in result.steps]
        assert all(b < a for a, b in zip(lat, lat[1:]))

    def test_pareto_points_nonempty(self, result):
        front = result.pareto_points()
        assert front
        assert all(isinstance(p.latency_ms, float) for p in front)

    def test_tighter_budget_less_aggressive(self):
        loose = run_codesign(DesignPoint(base_channels=16, n_blocks=2),
                             error_budget_deg=3.0, sequence_length=4)
        tight = run_codesign(DesignPoint(base_channels=16, n_blocks=2),
                             error_budget_deg=0.1, sequence_length=4)
        assert tight.final.latency_ms >= loose.final.latency_ms

    def test_validation(self):
        with pytest.raises(ValueError):
            run_codesign(error_budget_deg=0.0)
