"""Sample taps and streamed multilateration: live TDOA fixes without a
whole recording."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustics.trajectory import LinearTrajectory
from repro.core import PipelineConfig
from repro.fleet import (
    CorridorScene,
    CorridorStream,
    FleetScheduler,
    OracleDetector,
    Vehicle,
    place_corridor_nodes,
    synthesize_corridor,
)
from repro.signals import synthesize_siren
from repro.stream import NodeIngest, RecordingChunkSource, SampleTap, mlat_tap_capacity

FS = 8000.0


class TestSampleTap:
    def test_absolute_slices_match_stream(self):
        rng = np.random.default_rng(0)
        stream = rng.standard_normal((2, 5000))
        tap = SampleTap(2, 1024)
        for k in range(0, 5000, 137):
            tap.extend(stream[:, k : k + 137])
        assert tap.n_written == 5000
        assert tap.oldest == 5000 - 1024
        # Any resident absolute window reads back the exact stream samples.
        for start, stop in [(3976, 5000), (4000, 4500), (4999, 5000), (3976, 3977)]:
            assert np.array_equal(tap.read(start, stop), stream[:, start:stop])

    def test_evicted_and_future_reads_return_none(self):
        tap = SampleTap(1, 100)
        tap.extend(np.arange(250, dtype=float)[None, :])
        assert tap.read(149, 200) is None  # 149 was evicted (oldest is 150)
        assert tap.read(200, 251) is None  # 250 not written yet
        assert tap.read(150, 250) is not None

    def test_misses_count_eviction_but_not_lag(self):
        """n_misses flags an undersized window (evicted reads); reads that
        merely outran the stream are lag, not misses — and reset clears."""
        tap = SampleTap(1, 100)
        tap.extend(np.arange(250, dtype=float)[None, :])
        assert tap.n_misses == 0
        assert tap.read(149, 200) is None  # evicted: counted
        assert tap.n_misses == 1
        assert tap.read(200, 251) is None  # not written yet: NOT counted
        assert tap.n_misses == 1
        assert tap.read(150, 250) is not None  # a hit changes nothing
        assert tap.n_misses == 1
        tap.reset()
        assert tap.n_misses == 0

    def test_giant_block_keeps_newest(self):
        tap = SampleTap(1, 64)
        tap.extend(np.arange(1000, dtype=float)[None, :])
        assert tap.n_written == 1000
        got = tap.read(936, 1000)
        assert np.array_equal(got[0], np.arange(936.0, 1000.0))

    def test_validation_and_reset(self):
        with pytest.raises(ValueError):
            SampleTap(0, 10)
        with pytest.raises(ValueError):
            SampleTap(1, 0)
        tap = SampleTap(2, 16)
        with pytest.raises(ValueError):
            tap.extend(np.zeros((3, 4)))
        tap.extend(np.ones((2, 8)))
        with pytest.raises(ValueError):
            tap.read(5, 5)
        tap.reset()
        assert tap.n_written == 0
        assert tap.read(0, 1) is None

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_chunking_never_corrupts_resident_window(self, cap, seed):
        rng = np.random.default_rng(seed)
        stream = rng.standard_normal((1, 300))
        tap = SampleTap(1, cap)
        k = 0
        while k < 300:
            n = int(rng.integers(1, 50))
            tap.extend(stream[:, k : k + n])
            k = min(300, k + n)
        start = max(0, tap.n_written - cap)
        assert np.array_equal(
            tap.read(start, tap.n_written), stream[:, start : tap.n_written]
        )


class TestMlatTapCapacity:
    def test_floor_covers_block_frame_and_batch(self):
        floor = 2048 + 512 + 8 * 256
        assert mlat_tap_capacity(
            FS, frame_length=512, hop_length=256, hop_batch=8, mlat_block=2048,
            window_s=1e-6,
        ) == floor
        assert mlat_tap_capacity(
            FS, frame_length=512, hop_length=256, hop_batch=8, mlat_block=2048,
            window_s=2.0,
        ) == 16000

    def test_validation(self):
        with pytest.raises(ValueError):
            mlat_tap_capacity(
                FS, frame_length=512, hop_length=256, hop_batch=8, mlat_block=2048,
                window_s=0.0,
            )


class TestIngestTapMirroring:
    def test_tap_sees_data_and_zero_fill(self):
        """The tap must mirror exactly what enters the ring — delivered
        samples where chunks arrived, zeros where the driver dropped them —
        so absolute tap indices equal recording indices."""
        x = np.random.default_rng(5).standard_normal((2, 4096))

        class GappySource(RecordingChunkSource):
            def next_chunk(self):
                c = super().next_chunk()
                if c is not None and c.seq == 3:  # drop seq 3 deterministically
                    return super().next_chunk()
                return c

        tap = SampleTap(2, 4096)
        ingest = NodeIngest(GappySource(x, FS, chunk_samples=256), 512, 256, tap=tap)
        ingest.pull(None)
        assert tap.n_written == 4096
        expected = x.copy()
        expected[:, 3 * 256 : 4 * 256] = 0.0  # the lost chunk is silence
        assert np.array_equal(tap.read(0, 4096), expected)

    def test_channel_mismatch_raises(self):
        src = RecordingChunkSource(np.zeros((2, 1024)), FS, chunk_samples=256)
        with pytest.raises(ValueError, match="channels"):
            NodeIngest(src, 512, 256, tap=SampleTap(3, 1024))


def corridor_scene(seed, n_nodes=3, duration_s=2.0):
    rng = np.random.default_rng(seed)
    half = (n_nodes - 1) / 2 * 25.0 + 10.0
    y = float(rng.uniform(4.0, 12.0))
    speed = float(rng.uniform(10.0, 20.0))
    vehicle = Vehicle(
        "siren_wail",
        LinearTrajectory([-half, y, 0.8], [half, y, 0.8], speed),
        synthesize_siren("wail", duration_s, FS, rng=rng),
    )
    return CorridorScene([vehicle], place_corridor_nodes(n_nodes, 25.0))


class TestMlatWindowParity:
    """The window fusion hands to the TDOA localizer must be the *same
    audio* from a tap as from the full recording — the core parity
    property of streamed multilateration."""

    def engines(self, recordings, taps, hop_length=256):
        from repro.fleet.fusion import FusionConfig, FusionEngine

        nodes = place_corridor_nodes(2, 50.0)
        common = dict(
            config=FusionConfig(),
            frame_period=hop_length / FS,
            fs=FS,
            hop_length=hop_length,
            c=343.0,
        )
        rec_engine = FusionEngine(nodes, recordings=recordings, taps=None, **common)
        tap_engine = FusionEngine(nodes, recordings=None, taps=taps, **common)
        return rec_engine, tap_engine

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=40),
    )
    def test_fully_streamed_tap_reads_bit_identical_windows(self, seed, frame):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3000, 12000))
        recordings = {
            "node0": rng.standard_normal((4, n)),
            "node1": rng.standard_normal((4, n)),
        }
        taps = {nid: SampleTap(4, n) for nid in recordings}
        for nid, sig in recordings.items():
            k = 0
            while k < n:  # arbitrary chunking must not matter
                step = int(rng.integers(1, 700))
                taps[nid].extend(sig[:, k : k + step])
                k += step
        rec_engine, tap_engine = self.engines(recordings, taps)
        start = frame * 256
        stop = start + 2048
        a = rec_engine._mlat_window("node0", "node1", start, stop)
        b = tap_engine._mlat_window("node0", "node1", start, stop)
        assert (a is None) == (b is None)
        if a is not None:
            assert np.array_equal(a, b)

    def test_midstream_tap_clamps_to_ingested_horizon(self):
        rng = np.random.default_rng(1)
        recordings = {
            "node0": rng.standard_normal((4, 10000)),
            "node1": rng.standard_normal((4, 10000)),
        }
        taps = {nid: SampleTap(4, 4096) for nid in recordings}
        # Only 6000 samples have streamed so far.
        for nid, sig in recordings.items():
            taps[nid].extend(sig[:, :6000])
        _, tap_engine = self.engines(recordings, taps)
        # stop beyond the horizon: the window slides back to the newest
        # 2048 samples that exist so far — still real recording audio.
        win = tap_engine._mlat_window("node0", "node1", 5000, 7048)
        assert win is not None
        assert np.array_equal(win[:4], recordings["node0"][:, 6000 - 2048 : 6000])
        assert np.array_equal(win[4:], recordings["node1"][:, 6000 - 2048 : 6000])
        # start evicted from the tap: no fix rather than wrong audio.
        assert tap_engine._mlat_window("node0", "node1", 0, 2048) is None


class TestStreamedMultilateration:
    def setup_session(self, scene, **stream_kwargs):
        cfg = PipelineConfig(fs=FS, localizer="srp_fast", n_azimuth=36, n_elevation=2)
        sch = FleetScheduler(
            scene.nodes, cfg, detector=OracleDetector("siren_wail"), n_shards=2
        )
        rec = synthesize_corridor(scene, FS)
        stream = CorridorStream(rec, chunk_samples=cfg.hop_length)
        session = sch.stream(stream.sources(), hop_batch=8, **stream_kwargs)
        while not session.done:
            session.step()
        return sch, cfg, rec, session.finalize()

    def rms_to_truth(self, rec, cfg, result):
        """RMS road-plane error of the longest track vs the ground truth."""
        track = max(result.tracks, key=lambda t: len(t.history))
        frames = track.frames()
        truth = rec.vehicle_positions(frames * cfg.frame_period_s)[0, :, :2]
        err = track.positions() - truth
        return float(np.sqrt(np.mean(np.sum(err**2, axis=1))))

    def test_taps_unlock_mlat_without_recordings(self):
        scene = corridor_scene(0)
        sch, _, rec, tap_res = self.setup_session(scene, tap_window_s=1.0)
        _, _, _, none_res = self.setup_session(scene)
        assert sum(t.n_multilaterated for t in none_res.tracks) == 0
        assert sum(t.n_multilaterated for t in tap_res.tracks) > 0
        sch.close()

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_localization_quality_matches_full_recording_mlat(self, seed):
        """Across random corridors, tap-fed TDOA fixes keep the fused
        localization quality on par with the recordings-fed session.  (The
        fixes themselves may land on different frames: mid-stream the tap
        end-clamps windows to the audio that exists *so far*, where the
        offline path clamps to the full recording.)"""
        scene = corridor_scene(seed)
        sch, cfg, rec, tap_res = self.setup_session(scene, tap_window_s=1.0)
        _, _, _, rec_res = self.setup_session(scene, recordings=rec.recordings)
        assert sum(t.n_multilaterated for t in tap_res.tracks) > 0
        r_rec = self.rms_to_truth(rec, cfg, rec_res)
        r_tap = self.rms_to_truth(rec, cfg, tap_res)
        # Association is chaotic under siren jitter at a coarse azimuth
        # grid, so the comparison is deliberately loose — it guards against
        # taps feeding *wrong* audio (which sends fixes tens of metres off),
        # not against frame-level jitter between the two window clamps.
        assert r_tap < 3.0 * r_rec + 5.0
        sch.close()

    def test_small_tap_window_falls_back_cleanly(self):
        """A tap far too small to keep the multilateration window resident
        must degrade to triangulation, never localize on wrong audio."""
        scene = corridor_scene(4)
        sch, _, rec, res = self.setup_session(scene, tap_window_s=1e-6)
        # Tracks still exist and are confirmed via bearing triangulation.
        assert any(t.confirmed for t in res.tracks)
        sch.close()
