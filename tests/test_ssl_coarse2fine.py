"""Coarse-to-fine localization correctness + SpectraCache coherence.

Two contracts from the dense-path engine PR:

- **Cache coherence**: :class:`repro.ssl.SpectraCache` (float64) must be
  bit-identical to the direct GCC-PHAT functions it replaces, across FFT
  lengths, pair subsets and row slicing.
- **Refinement tolerance**: the coarse-to-fine search must find the dense
  sweep's argmax exactly on coherent-source frames (peak lobe wider than one
  coarse stride) and stay within the documented normalized peak-power gap on
  adversarial noise-only frames, for all three localizer classes.
"""

import numpy as np
import pytest

from repro.dsp.stft import get_window
from repro.ssl import (
    DoaGrid,
    FastSrpPhat,
    MusicDoa,
    RefineConfig,
    RefineState,
    SpectraCache,
    SrpPhat,
    gcc_phat_spectra,
    refinement_gap,
)

FS = 16000.0
C = 343.0
GRID = DoaGrid(n_azimuth=48, n_elevation=4, el_min=0.0, el_max=np.pi / 4)
MICS = np.array(
    [[0.1, 0.1, 1.0], [0.1, -0.1, 1.0], [-0.1, -0.1, 1.0], [-0.1, 0.1, 1.0]]
)


def random_array(rng, n_mics=4, aperture=0.25):
    """A random (non-degenerate) planar-ish array."""
    pos = rng.uniform(-aperture / 2, aperture / 2, size=(n_mics, 3))
    pos[:, 2] = 1.0 + 0.05 * pos[:, 2]
    return pos


def simulate(mics, az, el, *, n=512, seed=0, snr_noise=0.05, rng=None):
    """Coherent broadband source from (az, el) plus a little noise."""
    r = np.random.default_rng(seed)
    u = np.array([np.cos(el) * np.cos(az), np.cos(el) * np.sin(az), np.sin(el)])
    src = r.standard_normal(n)
    spec = np.fft.rfft(src)
    f = np.arange(spec.size) / n
    out = np.empty((mics.shape[0], n))
    for m, pos in enumerate(mics):
        delay = -(pos @ u) / C * FS
        out[m] = np.fft.irfft(spec * np.exp(-2j * np.pi * f * delay), n=n)
    noise_rng = rng or r
    return out + snr_noise * noise_rng.standard_normal(out.shape)


def c2f_peak_flats(results):
    """Flat argmax indices of coarse-to-fine results (finite cells only)."""
    out = []
    for r in results:
        flat = r.map.ravel()
        out.append(int(np.nanargmax(np.where(np.isfinite(flat), flat, -np.inf))))
    return np.array(out)


class TestSpectraCacheCoherence:
    def test_cross_spectra_bit_identical(self):
        rng = np.random.default_rng(0)
        frames = rng.standard_normal((7, 4, 256))
        for n_fft in (512, 1024):
            cache = SpectraCache(frames, dtype=np.float64)
            direct = gcc_phat_spectra(frames, n_fft=n_fft)
            assert np.array_equal(cache.cross_spectra(n_fft), direct)

    def test_single_frame_and_pair_subset(self):
        rng = np.random.default_rng(1)
        frames = rng.standard_normal((4, 200))
        pairs = [(0, 3), (1, 2)]
        cache = SpectraCache(frames)
        direct = gcc_phat_spectra(frames, n_fft=512, pairs=pairs)
        assert np.array_equal(cache.cross_spectra(512, pairs)[0], direct)

    def test_gcc_matches_direct_irfft(self):
        rng = np.random.default_rng(2)
        frames = rng.standard_normal((3, 4, 256))
        cache = SpectraCache(frames)
        direct = np.fft.irfft(gcc_phat_spectra(frames, n_fft=512), n=512, axis=-1)
        assert np.allclose(cache.gcc(512), direct, atol=1e-12)

    def test_take_slices_computed_entries(self):
        rng = np.random.default_rng(3)
        frames = rng.standard_normal((6, 4, 256))
        cache = SpectraCache(frames)
        full = cache.cross_spectra(512)
        child = cache.take(np.array([1, 4]))
        assert np.array_equal(child.cross_spectra(512), full[[1, 4]])
        # Lazily computed on the child only.
        assert np.array_equal(
            child.gcc(512), np.fft.irfft(full[[1, 4]], n=512, axis=-1)
        )

    def test_windowed_power_derivation_matches_direct(self):
        rng = np.random.default_rng(4)
        frames = rng.standard_normal((5, 4, 512))
        win = get_window("hann", 512)
        direct_spec = np.fft.rfft(frames[:, 0, :] * win, axis=-1)
        direct = direct_spec.real**2 + direct_spec.imag**2
        cold = SpectraCache(frames)
        assert np.array_equal(cold.ref_windowed_power(win), direct)  # direct path
        primed = SpectraCache(frames)
        primed.prime_dense(1024, win)
        derived = primed.ref_windowed_power(win)
        assert np.allclose(derived, direct, rtol=1e-10, atol=1e-12)
        # ... and the whitened spectra survived priming bit-identically.
        assert np.array_equal(
            primed.cross_spectra(1024), gcc_phat_spectra(frames, n_fft=1024)
        )

    def test_float32_cache_close_to_float64(self):
        rng = np.random.default_rng(5)
        frames = rng.standard_normal((4, 4, 256))
        c32 = SpectraCache(frames, dtype=np.float32).cross_spectra(512)
        c64 = SpectraCache(frames, dtype=np.float64).cross_spectra(512)
        assert c32.dtype == np.complex64
        assert np.allclose(c32, c64, atol=5e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpectraCache(np.ones(16))  # 1-D
        with pytest.raises(ValueError):
            SpectraCache(np.ones((2, 4, 16)), dtype=np.int32)


def _make(cls, mics, **kw):
    if cls is MusicDoa:
        return MusicDoa(mics, FS, grid=GRID, n_fft=1024, **kw)
    return cls(mics, FS, grid=GRID, n_fft=1024, **kw)


@pytest.mark.parametrize("cls", [SrpPhat, FastSrpPhat, MusicDoa])
class TestCoarseToFineContract:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_coherent_sources_match_dense_argmax(self, cls, seed):
        """Random arrays x random source tracks: refined peak == dense argmax
        on (almost) every frame, and always within the documented gap."""
        rng = np.random.default_rng(seed)
        mics = random_array(rng)
        azs = rng.uniform(-np.pi, np.pi) + np.linspace(0.0, 0.6, 24)
        el = rng.uniform(0.05, np.pi / 5)
        frames = np.stack(
            [simulate(mics, a, el, seed=seed * 100 + i, rng=rng) for i, a in enumerate(azs)]
        )
        loc = _make(cls, mics)
        dense = loc.map_from_frames_batch(frames)
        res = loc.localize_batch(frames, refine=RefineConfig(), state=RefineState())
        gaps = refinement_gap(dense, c2f_peak_flats(res))
        exact = np.mean(gaps == 0.0)
        assert exact >= 0.8  # float32 spectra may tie-break a cell differently
        assert gaps.max() <= 0.1

    def test_noise_frames_within_documented_tolerance(self, cls):
        """Adversarial multimodal maps: the refined peak must still dominate
        the best coarse sample, bounding the gap well below the map range."""
        rng = np.random.default_rng(7)
        frames = rng.standard_normal((32, 4, 512))
        loc = _make(cls, MICS)
        dense = loc.map_from_frames_batch(frames)
        res = loc.localize_batch(frames, refine=RefineConfig(), state=RefineState())
        gaps = refinement_gap(dense, c2f_peak_flats(res))
        assert gaps.max() <= 0.5
        assert np.median(gaps) <= 0.05

    def test_streaming_matches_batched(self, cls):
        rng = np.random.default_rng(11)
        frames = np.stack(
            [simulate(MICS, a, 0.3, seed=40 + i, rng=rng) for i, a in enumerate(np.linspace(-1, 1, 10))]
        )
        loc = _make(cls, MICS, refine=RefineConfig())
        batched = loc.localize_batch(frames, state=RefineState())
        st = RefineState()
        singles = [loc.localize(f, state=st) for f in frames]
        for r1, r2 in zip(singles, batched):
            assert r1.azimuth == r2.azimuth
            assert r1.elevation == r2.elevation

    def test_deeper_pyramid_levels(self, cls):
        rng = np.random.default_rng(13)
        frames = np.stack(
            [simulate(MICS, 1.2, 0.2, seed=60 + i, rng=rng) for i in range(6)]
        )
        loc = _make(cls, MICS)
        dense = loc.map_from_frames_batch(frames)
        res = loc.localize_batch(frames, refine=3)  # int shorthand for levels
        gaps = refinement_gap(dense, c2f_peak_flats(res))
        assert gaps.max() <= 0.1

    def test_trivial_grid_falls_back_to_dense(self, cls):
        grid = DoaGrid(n_azimuth=8, n_elevation=1)
        loc = (
            MusicDoa(MICS, FS, grid=grid, n_fft=1024)
            if cls is MusicDoa
            else cls(MICS, FS, grid=grid, n_fft=1024)
        )
        rng = np.random.default_rng(17)
        frames = rng.standard_normal((4, 4, 256))
        dense = loc.localize_batch(frames)
        refined = loc.localize_batch(frames, refine=RefineConfig(levels=4))
        for r1, r2 in zip(dense, refined):
            assert r1.azimuth == r2.azimuth


class TestTemporalReuse:
    def test_static_source_reuses_window(self):
        rng = np.random.default_rng(19)
        frames = np.stack(
            [simulate(MICS, 0.7, 0.25, seed=80 + i, rng=rng) for i in range(30)]
        )
        loc = FastSrpPhat(MICS, FS, grid=GRID, n_fft=1024, refine=RefineConfig())
        state = RefineState()
        loc.localize_batch(frames, state=state)
        assert state.n_selected >= 1
        assert state.n_reused >= 20  # static source: almost every hop reuses

    def test_state_reset(self):
        state = RefineState()
        state.anchor = (1, 1)
        state.window = np.arange(3)
        state.n_reused = 5
        state.reset()
        assert state.anchor is None and state.window is None and state.n_reused == 0

    def test_refine_config_validation(self):
        with pytest.raises(ValueError):
            RefineConfig(levels=0)
        with pytest.raises(ValueError):
            RefineConfig(top_k=0)
        with pytest.raises(ValueError):
            RefineConfig(reuse_gate=-1)


class TestTdoaVectorised:
    def test_matches_pairwise_estimates(self):
        from repro.ssl import estimate_tdoa
        from repro.ssl.multilateration import tdoa_vector
        from repro.ssl.srp import mic_pairs

        rng = np.random.default_rng(23)
        frames = simulate(MICS, -0.9, 0.15, n=1024, seed=90, rng=rng)
        taus = tdoa_vector(frames, FS, interp=4)
        ref = np.array(
            [
                estimate_tdoa(frames[i], frames[j], FS, interp=4)
                for i, j in mic_pairs(4)
            ]
        )
        # Per-mic vs per-pair PHAT whitening differ at the eps level; the
        # refined peaks must agree to well under one interpolated sample.
        assert np.allclose(taus, ref, atol=0.5 / (4 * FS))

    def test_shared_cache(self):
        from repro.ssl.multilateration import tdoa_vector

        rng = np.random.default_rng(29)
        frames = rng.standard_normal((4, 600))
        cache = SpectraCache(frames)
        assert np.allclose(
            tdoa_vector(frames, FS, cache=cache), tdoa_vector(frames, FS)
        )
