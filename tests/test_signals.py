"""Tests for repro.signals: generators, sirens, horns, urban noise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signals import (
    HornSpec,
    SirenSpec,
    UrbanNoiseSpec,
    colored_noise,
    exponential_chirp,
    harmonic_stack,
    linear_chirp,
    pulse_train,
    siren_contour,
    synthesize_horn,
    synthesize_siren,
    synthesize_urban_noise,
    tone,
    vehicle_pass_noise,
    white_noise,
)
from repro.signals.sirens import DEFAULT_SPECS, SIREN_TYPES


def dominant_freq(x, fs):
    spec = np.abs(np.fft.rfft(x * np.hanning(x.size)))
    return np.fft.rfftfreq(x.size, 1 / fs)[np.argmax(spec)]


class TestGenerators:
    def test_tone_frequency(self):
        fs = 8000
        assert abs(dominant_freq(tone(440.0, 1.0, fs), fs) - 440.0) < 2.0

    def test_tone_amplitude(self):
        x = tone(100.0, 0.5, 8000, amplitude=0.3)
        assert np.max(np.abs(x)) == pytest.approx(0.3, abs=0.01)

    def test_linear_chirp_endpoints(self):
        fs = 8000
        x = linear_chirp(200.0, 2000.0, 2.0, fs)
        f_start = dominant_freq(x[: fs // 4], fs)
        f_end = dominant_freq(x[-fs // 4 :], fs)
        assert f_start < 600 and f_end > 1500

    def test_exponential_chirp_requires_positive(self):
        with pytest.raises(ValueError):
            exponential_chirp(0.0, 100.0, 1.0, 8000)

    def test_harmonic_stack_contains_harmonics(self):
        fs = 16000
        x = harmonic_stack(400.0, fs, n_harmonics=4, duration=1.0)
        spec = np.abs(np.fft.rfft(x * np.hanning(x.size)))
        freqs = np.fft.rfftfreq(x.size, 1 / fs)
        for k in (1, 2, 3):
            bin_k = np.argmin(np.abs(freqs - 400.0 * k))
            local = spec[bin_k - 3 : bin_k + 4].max()
            assert local > 0.05 * spec.max()

    def test_harmonic_stack_drops_aliasing_harmonics(self):
        fs = 2000
        x = harmonic_stack(900.0, fs, n_harmonics=8, duration=0.5)
        # Only the fundamental survives below Nyquist; above-Nyquist
        # harmonics must not alias into the band.
        spec = np.abs(np.fft.rfft(x * np.hanning(x.size)))
        freqs = np.fft.rfftfreq(x.size, 1 / fs)
        peak = freqs[np.argmax(spec)]
        assert abs(peak - 900.0) < 10.0

    def test_harmonic_stack_scalar_needs_duration(self):
        with pytest.raises(ValueError, match="duration"):
            harmonic_stack(100.0, 8000)

    def test_pulse_train_count(self):
        fs = 8000
        x = pulse_train(10.0, 1.0, fs, pulse_width=1 / fs)
        assert int(x.sum()) == 10

    def test_white_noise_statistics(self):
        x = white_noise(2.0, 8000, rng=np.random.default_rng(0))
        assert abs(x.mean()) < 0.05
        assert x.std() == pytest.approx(1.0, abs=0.05)

    def test_bad_duration(self):
        with pytest.raises(ValueError):
            tone(100.0, 0.0, 8000)


class TestSirens:
    @pytest.mark.parametrize("kind", SIREN_TYPES)
    def test_synthesis_normalized(self, kind):
        x = synthesize_siren(kind, 2.0, 8000)
        assert np.max(np.abs(x)) == pytest.approx(1.0)

    def test_hilow_contour_two_levels(self):
        spec = DEFAULT_SPECS["hi-low"]
        c = siren_contour(spec, 2.0, 8000)
        assert set(np.unique(c)) == {spec.f_low, spec.f_high}

    def test_wail_contour_spans_range(self):
        spec = DEFAULT_SPECS["wail"]
        c = siren_contour(spec, spec.period, 8000)
        assert c.min() == pytest.approx(spec.f_low, rel=0.01)
        assert c.max() == pytest.approx(spec.f_high, rel=0.01)

    def test_yelp_faster_than_wail(self):
        assert DEFAULT_SPECS["yelp"].period < DEFAULT_SPECS["wail"].period

    def test_wail_fundamental_in_band(self):
        fs = 8000
        x = synthesize_siren("wail", 4.0, fs)
        f = dominant_freq(x, fs)
        assert 500 < f < 3100  # fundamental or low harmonic

    def test_jitter_changes_signal(self):
        rng = np.random.default_rng(7)
        a = synthesize_siren("wail", 1.0, 8000)
        b = synthesize_siren("wail", 1.0, 8000, rng=rng, jitter=0.1)
        assert not np.allclose(a, b)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown siren kind"):
            synthesize_siren("whoop", 1.0, 8000)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SirenSpec("wail", 500.0, 400.0, 1.0)
        with pytest.raises(ValueError):
            SirenSpec("wail", 100.0, 200.0, -1.0)


class TestHorn:
    def test_normalized(self):
        x = synthesize_horn(1.0, 8000)
        assert np.max(np.abs(x)) == pytest.approx(1.0)

    def test_burst_count_gaps(self):
        fs = 8000
        x = synthesize_horn(2.0, fs, n_bursts=2, duty=0.5)
        # Second half of each burst period should be silent.
        assert np.abs(x[int(0.6 * fs) : int(0.9 * fs)]).max() < 1e-9

    def test_fundamental_near_spec(self):
        fs = 16000
        spec = HornSpec(f0=420.0, chord_ratio=1.0, n_harmonics=1)
        x = synthesize_horn(1.0, fs, spec=spec, n_bursts=1, duty=1.0)
        assert abs(dominant_freq(x, fs) - 420.0) < 5.0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            HornSpec(f0=-1.0)
        with pytest.raises(ValueError):
            HornSpec(chord_ratio=0.5)

    def test_bad_duty(self):
        with pytest.raises(ValueError):
            synthesize_horn(1.0, 8000, duty=0.0)


class TestNoise:
    def test_colored_noise_unit_rms(self):
        x = colored_noise(1.0, 8000, alpha=1.0, rng=np.random.default_rng(0))
        assert np.sqrt(np.mean(x**2)) == pytest.approx(1.0, abs=1e-9)

    def test_pink_has_more_low_frequency_energy(self):
        rng = np.random.default_rng(3)
        x = colored_noise(4.0, 8000, alpha=2.0, rng=rng)
        spec = np.abs(np.fft.rfft(x)) ** 2
        freqs = np.fft.rfftfreq(x.size, 1 / 8000)
        low = spec[(freqs > 10) & (freqs < 100)].mean()
        high = spec[(freqs > 1000) & (freqs < 2000)].mean()
        assert low > 20 * high

    def test_white_alpha_zero_flat(self):
        rng = np.random.default_rng(4)
        x = colored_noise(4.0, 8000, alpha=0.0, rng=rng)
        spec = np.abs(np.fft.rfft(x)) ** 2
        freqs = np.fft.rfftfreq(x.size, 1 / 8000)
        low = spec[(freqs > 100) & (freqs < 500)].mean()
        high = spec[(freqs > 3000) & (freqs < 3900)].mean()
        assert 0.3 < low / high < 3.0

    def test_vehicle_pass_envelope_peaks_at_pass_time(self):
        fs = 8000
        x = vehicle_pass_noise(4.0, fs, pass_time=2.0, pass_width=0.5, rng=np.random.default_rng(5))
        env = np.array([np.std(x[i : i + fs // 4]) for i in range(0, x.size - fs // 4, fs // 4)])
        assert np.argmax(env) in (6, 7, 8)  # around 2 s in quarter-second blocks

    def test_urban_noise_unit_rms(self):
        x = synthesize_urban_noise(1.0, 8000, rng=np.random.default_rng(0))
        assert np.sqrt(np.mean(x**2)) == pytest.approx(1.0, abs=1e-9)

    def test_urban_noise_reproducible(self):
        a = synthesize_urban_noise(1.0, 8000, rng=np.random.default_rng(11))
        b = synthesize_urban_noise(1.0, 8000, rng=np.random.default_rng(11))
        assert np.allclose(a, b)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            UrbanNoiseSpec(bed_level=-1.0)

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=0.3, max_value=2.0))
    def test_urban_noise_finite(self, duration):
        x = synthesize_urban_noise(duration, 4000, rng=np.random.default_rng(1))
        assert np.all(np.isfinite(x))
