"""Tests for the road-acoustics simulator (Fig. 2 physics)."""

import numpy as np
import pytest

from repro.acoustics import (
    LinearTrajectory,
    MicrophoneArray,
    RoadAcousticsSimulator,
    Scene,
    StaticPosition,
)
from repro.signals import tone, white_noise

FS = 16000


def measured_peak_freq(x, fs):
    spec = np.abs(np.fft.rfft(x * np.hanning(x.size)))
    return np.fft.rfftfreq(x.size, 1 / fs)[np.argmax(spec)]


@pytest.fixture(scope="module")
def mono_array():
    return MicrophoneArray(np.array([[0.0, 0.0, 1.0]]))


class TestSceneValidation:
    def test_mic_below_road_raises(self):
        with pytest.raises(ValueError, match="strictly above"):
            MicrophoneArray(np.array([[0.0, 0.0, -1.0]]))

    def test_unknown_surface_raises(self, mono_array):
        with pytest.raises(ValueError, match="unknown surface preset"):
            Scene(StaticPosition([5, 0, 1]), mono_array, surface="mud")

    def test_aperture(self):
        arr = MicrophoneArray(np.array([[0, 0, 1.0], [0, 3, 1.0], [0, 1, 1.0]]))
        assert arr.aperture == pytest.approx(3.0)

    def test_centroid(self):
        arr = MicrophoneArray(np.array([[0, 0, 1.0], [2, 0, 1.0]]))
        assert np.allclose(arr.centroid, [1.0, 0.0, 1.0])


class TestDoppler:
    def test_approaching_shift(self, mono_array):
        speed, f0 = 20.0, 1000.0
        scene = Scene(
            LinearTrajectory([-200, 0.5, 1.0], [0, 0.5, 1.0], speed),
            mono_array,
            surface=None,
        )
        sim = RoadAcousticsSimulator(scene, FS, air_absorption=False)
        out = sim.simulate(tone(f0, 2.0, FS))[0]
        c = scene.speed_of_sound
        measured = measured_peak_freq(out[FS // 2 : FS + FS // 2], FS)
        assert measured == pytest.approx(f0 * c / (c - speed), rel=0.01)

    def test_receding_shift(self, mono_array):
        speed, f0 = 20.0, 1000.0
        scene = Scene(
            LinearTrajectory([5, 0.5, 1.0], [300, 0.5, 1.0], speed),
            mono_array,
            surface=None,
        )
        sim = RoadAcousticsSimulator(scene, FS, air_absorption=False)
        out = sim.simulate(tone(f0, 2.0, FS))[0]
        c = scene.speed_of_sound
        measured = measured_peak_freq(out[-FS:], FS)
        assert measured == pytest.approx(f0 * c / (c + speed), rel=0.01)

    def test_static_source_no_shift(self, mono_array):
        f0 = 800.0
        scene = Scene(StaticPosition([20, 0, 1.0]), mono_array, surface=None)
        sim = RoadAcousticsSimulator(scene, FS, air_absorption=False)
        out = sim.simulate(tone(f0, 1.0, FS))[0]
        assert measured_peak_freq(out[FS // 4 :], FS) == pytest.approx(f0, abs=FS / (0.75 * FS))


class TestSpreading:
    def test_inverse_distance_gain(self, mono_array):
        out = {}
        for d in (10.0, 20.0):
            scene = Scene(StaticPosition([d, 0, 1.0]), mono_array, surface=None)
            sim = RoadAcousticsSimulator(scene, FS, air_absorption=False)
            y = sim.simulate(tone(1000.0, 0.5, FS))[0]
            out[d] = np.std(y[FS // 4 :])
        assert out[10.0] / out[20.0] == pytest.approx(2.0, rel=0.05)

    def test_min_distance_clips_gain(self, mono_array):
        scene = Scene(StaticPosition([0.01, 0.0, 1.001]), mono_array, surface=None)
        sim = RoadAcousticsSimulator(scene, FS, air_absorption=False, min_distance=0.5)
        y = sim.simulate(tone(1000.0, 0.2, FS))[0]
        assert np.max(np.abs(y)) <= 2.1  # 1 / 0.5 with interpolation ripple


class TestReflection:
    def test_reflection_adds_energy(self, mono_array):
        src = StaticPosition([15, 0, 1.0])
        sig = white_noise(0.5, FS, rng=np.random.default_rng(0))
        free = RoadAcousticsSimulator(
            Scene(src, mono_array, surface=None), FS, air_absorption=False
        ).simulate(sig)[0]
        refl = RoadAcousticsSimulator(
            Scene(src, mono_array, surface="dense_asphalt"), FS, air_absorption=False
        ).simulate(sig)[0]
        assert np.std(refl) > np.std(free)

    def test_comb_filtering_notch(self, mono_array):
        # Direct + delayed reflection produces a comb; check the impulse
        # response has two distinct arrivals.
        src = StaticPosition([20, 0, 2.0])
        scene = Scene(src, mono_array, surface="concrete")
        sim = RoadAcousticsSimulator(scene, FS, air_absorption=False)
        impulse = np.zeros(int(0.2 * FS))
        impulse[0] = 1.0
        y = sim.simulate(impulse)[0]
        snap = sim.path_snapshot(0.0)
        d_direct = int(round(snap.direct_delay_s * FS))
        d_refl = int(round(snap.reflected_delay_s * FS))
        assert np.abs(y[d_direct - 2 : d_direct + 3]).max() > 5 * np.abs(y).mean()
        assert np.abs(y[d_refl - 2 : d_refl + 3]).max() > 5 * np.abs(y).mean()
        assert d_refl > d_direct


class TestMultichannel:
    def test_output_shape(self):
        mics = MicrophoneArray(np.array([[0, 0.2, 1.0], [0, -0.2, 1.0], [0.2, 0, 1.0]]))
        scene = Scene(StaticPosition([10, 0, 1.0]), mics, surface=None)
        sim = RoadAcousticsSimulator(scene, FS)
        out = sim.simulate(np.zeros(1000) + 0.1)
        assert out.shape == (3, 1000)

    def test_closer_mic_louder_and_earlier(self):
        mics = MicrophoneArray(np.array([[5.0, 0, 1.0], [-5.0, 0, 1.0]]))
        scene = Scene(StaticPosition([20.0, 0, 1.0]), mics, surface=None)
        sim = RoadAcousticsSimulator(scene, FS, air_absorption=False)
        impulse = np.zeros(FS // 4)
        impulse[0] = 1.0
        out = sim.simulate(impulse)
        first = [int(np.argmax(np.abs(out[i]) > 1e-3)) for i in range(2)]
        assert first[0] < first[1]
        # In-band level scales with the spreading gain 1/d (the Lagrange
        # kernel is flat well below Nyquist, so a tone isolates the gain).
        out = sim.simulate(tone(1000.0, 0.5, FS))
        settled = out[:, FS // 8 :]
        ratio = np.std(settled[0]) / np.std(settled[1])
        assert ratio == pytest.approx(25.0 / 15.0, rel=0.02)


class TestPathSnapshot:
    def test_consistency_with_geometry(self, mono_array):
        scene = Scene(StaticPosition([3.0, 4.0, 1.0]), mono_array, surface=None)
        sim = RoadAcousticsSimulator(scene, FS)
        snap = sim.path_snapshot(0.0)
        assert snap.direct_distance == pytest.approx(5.0)
        assert snap.reflected_distance == pytest.approx(np.sqrt(25.0 + 4.0))

    def test_bad_mic_index(self, mono_array):
        scene = Scene(StaticPosition([3.0, 4.0, 1.0]), mono_array)
        sim = RoadAcousticsSimulator(scene, FS)
        with pytest.raises(ValueError):
            sim.path_snapshot(0.0, mic_index=5)


class TestValidation:
    def test_trajectory_below_road_raises(self, mono_array):
        scene = Scene(
            LinearTrajectory([0, 0, 1.0], [10, 0, 1.0], 5.0), mono_array, surface=None
        )
        scene.trajectory = LinearTrajectory([0, 0, 0.5], [10, 0, -0.5], 5.0)
        sim = RoadAcousticsSimulator(scene, FS)
        with pytest.raises(ValueError, match="road plane"):
            sim.simulate(np.ones(3 * FS))

    def test_empty_signal_raises(self, mono_array):
        scene = Scene(StaticPosition([5, 0, 1]), mono_array)
        with pytest.raises(ValueError):
            RoadAcousticsSimulator(scene, FS).simulate(np.array([]))

    def test_invalid_fs_raises(self, mono_array):
        scene = Scene(StaticPosition([5, 0, 1]), mono_array)
        with pytest.raises(ValueError):
            RoadAcousticsSimulator(scene, 0.0)


class TestAirAbsorptionIntegration:
    def test_distance_darkens_spectrum(self, mono_array):
        fs = 32000
        sig = white_noise(1.0, fs, rng=np.random.default_rng(2))

        def brightness(distance):
            scene = Scene(StaticPosition([distance, 0, 1.0]), mono_array)
            sim = RoadAcousticsSimulator(scene, fs, air_absorption=True)
            y = sim.simulate(sig)[0][-fs // 2 :]  # settled tail
            spec = np.abs(np.fft.rfft(y)) ** 2
            freqs = np.fft.rfftfreq(y.size, 1 / fs)
            hi = spec[freqs > 8000].sum()
            lo = spec[(freqs > 100) & (freqs < 2000)].sum()
            return hi / lo

        assert brightness(150.0) < 0.8 * brightness(20.0)
