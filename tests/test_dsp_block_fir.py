"""Property suite for the streaming overlap-save FIR engine.

Pins the contracts the acoustics stack now leans on:

- :class:`~repro.dsp.block_fir.BlockFir` output is **bitwise** invariant to
  how the caller slices the input stream (convolution always happens on fixed
  step boundaries from stream start, never on caller boundaries);
- batched :class:`~repro.dsp.block_fir.FirBank.convolve` matches the scalar
  whole-signal path filter-by-filter;
- the air-absorption OLA stage crossfades distance-bin filter switches with
  no sample-step discontinuity;
- the rewritten simulator matches the old per-mic scalar path to tight
  tolerance (the legacy algorithm is reimplemented verbatim here).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustics import MicrophoneArray, RoadAcousticsSimulator, Scene
from repro.acoustics.air import air_absorption_fir, shared_air_filter_bank
from repro.acoustics.asphalt import asphalt_reflection_fir
from repro.acoustics.delay_line import render_varying_delay
from repro.acoustics.simulator import AirAbsorptionStage
from repro.acoustics.trajectory import LinearTrajectory
from repro.dsp import BlockFir, FirBank, apply_fir

FS = 8000.0


def _random_splits(rng: np.random.Generator, n: int) -> list[int]:
    """Random partition of ``n`` into positive chunk sizes (may include 0s)."""
    sizes = []
    left = n
    while left > 0:
        take = int(rng.integers(0, left + 1))  # 0-length feeds must be legal
        sizes.append(take)
        left -= take
    return sizes or [0]


def _legacy_apply_fir(x, h, *, zero_phase_pad=False):
    """The pre-bank scalar apply_fir, verbatim (regression reference)."""
    x = np.asarray(x, dtype=np.float64)
    h = np.asarray(h, dtype=np.float64)
    n = x.size + h.size - 1
    n_fft = 1 << int(np.ceil(np.log2(max(n, 1))))
    y = np.fft.irfft(np.fft.rfft(x, n_fft) * np.fft.rfft(h, n_fft), n_fft)[:n]
    if zero_phase_pad:
        gd = (h.size - 1) // 2
        return y[gd : gd + x.size]
    return y[: x.size]


class TestBlockFirSplitInvariance:
    @settings(max_examples=25, deadline=None)
    @given(
        n_taps=st.integers(min_value=1, max_value=200),
        n=st.integers(min_value=0, max_value=12000),
        zero_phase=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_bitwise_invariant_to_block_boundaries(self, n_taps, n, zero_phase, seed):
        rng = np.random.default_rng(seed)
        h = rng.standard_normal(n_taps)
        x = rng.standard_normal(n)

        whole = BlockFir(h, zero_phase=zero_phase, step=512)
        y_whole = np.concatenate([whole.feed(x), whole.finish()], axis=-1)

        split = BlockFir(h, zero_phase=zero_phase, step=512)
        parts, cursor = [], 0
        for size in _random_splits(rng, n):
            parts.append(split.feed(x[cursor : cursor + size]))
            cursor += size
        parts.append(split.finish())
        y_split = np.concatenate(parts, axis=-1)

        assert y_whole.shape == y_split.shape == (n,)
        assert np.array_equal(y_whole, y_split)  # bitwise, not allclose

    @settings(max_examples=15, deadline=None)
    @given(
        n_taps=st.integers(min_value=1, max_value=80),
        n=st.integers(min_value=1, max_value=6000),
        zero_phase=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_matches_apply_fir(self, n_taps, n, zero_phase, seed):
        """Streamed output equals the whole-signal reference (incl. even L,
        whose group delay (L-1)//2 must match apply_fir's slice)."""
        rng = np.random.default_rng(seed)
        h = rng.standard_normal(n_taps)
        x = rng.standard_normal(n)
        fir = BlockFir(h, zero_phase=zero_phase, step=256)
        y = np.concatenate([fir.feed(x), fir.finish()], axis=-1)
        ref = apply_fir(x, h, zero_phase_pad=zero_phase)
        assert np.allclose(y, ref, atol=1e-10)

    def test_multichannel_stream_matches_per_channel(self):
        rng = np.random.default_rng(3)
        h = rng.standard_normal(33)
        x = rng.standard_normal((3, 5000))
        fir = BlockFir(h, zero_phase=True)
        y = np.concatenate([fir.feed(x), fir.finish()], axis=-1)
        for ch in range(3):
            assert np.allclose(y[ch], apply_fir(x[ch], h, zero_phase_pad=True), atol=1e-10)

    def test_feed_after_finish_raises(self):
        fir = BlockFir(np.ones(3))
        fir.feed(np.zeros(10))
        fir.finish()
        with pytest.raises(RuntimeError):
            fir.feed(np.zeros(1))
        with pytest.raises(RuntimeError):
            fir.finish()


class TestFirBank:
    @settings(max_examples=15, deadline=None)
    @given(
        n_filters=st.integers(min_value=1, max_value=6),
        n_taps=st.integers(min_value=1, max_value=101),
        n=st.integers(min_value=1, max_value=4000),
        zero_phase=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_batched_matches_scalar(self, n_filters, n_taps, n, zero_phase, seed):
        """One stacked rfft/multiply/irfft == per-(channel, filter) scalar calls."""
        rng = np.random.default_rng(seed)
        filters = rng.standard_normal((n_filters, n_taps))
        x = rng.standard_normal((n_filters, n))
        bank = FirBank(filters)
        idx = rng.integers(0, n_filters, size=n_filters)
        y = bank.convolve(x, idx, zero_phase=zero_phase)
        for ch in range(n_filters):
            ref = apply_fir(x[ch], filters[idx[ch]], zero_phase_pad=zero_phase)
            assert np.allclose(y[ch], ref, atol=1e-10)

    def test_extend_backfills_cached_spectra(self):
        rng = np.random.default_rng(5)
        bank = FirBank(rng.standard_normal(17))
        x = rng.standard_normal(400)
        bank.convolve(x)  # populate a spectra cache entry
        row = bank.extend(rng.standard_normal(17))
        assert row == 1
        y = bank.convolve(x, np.array(row))
        assert np.allclose(y, apply_fir(x, bank.filters[row]), atol=1e-10)

    def test_spectra_rejects_short_fft(self):
        bank = FirBank(np.ones(64))
        with pytest.raises(ValueError):
            bank.spectra(32)


class TestAirAbsorptionStage:
    def _bank(self):
        return shared_air_filter_bank(FS, None)

    @settings(max_examples=10, deadline=None)
    @given(
        total=st.integers(min_value=1, max_value=20000),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_split_invariance(self, total, seed):
        """Output is bitwise invariant to feed slicing (fixed block layout)."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((2, total))
        d = 5.0 + 40.0 * rng.random((2, total))
        bank = self._bank()

        whole = AirAbsorptionStage(bank, total)
        y_whole = np.concatenate([whole.feed(x, d), whole.finish()], axis=-1)

        split = AirAbsorptionStage(bank, total)
        parts, cursor = [], 0
        for size in _random_splits(rng, total):
            parts.append(split.feed(x[:, cursor : cursor + size], d[:, cursor : cursor + size]))
            cursor += size
        parts.append(split.finish())
        y_split = np.concatenate(parts, axis=-1)

        assert y_whole.shape == y_split.shape == (2, total)
        assert np.array_equal(y_whole, y_split)

    def test_crossfade_continuity_at_bin_crossing(self):
        """A distance ramp crossing 2 m grid bins must not step the output.

        The 50 % Hann overlap crossfades neighbouring bins' filters, so the
        output's sample-to-sample increments stay bounded by a small multiple
        of the input's own increments even right at the bin switch.
        """
        total = 16384
        t = np.arange(total) / FS
        x = np.sin(2 * np.pi * 700.0 * t)[None, :]
        d = np.linspace(9.0, 15.1, total)[None, :]  # crosses bins 5, 6, 7
        stage = AirAbsorptionStage(self._bank(), total, air_block=1024)
        y = np.concatenate([stage.feed(x, d), stage.finish()], axis=-1)[0]
        in_step = np.max(np.abs(np.diff(x[0])))
        out_step = np.max(np.abs(np.diff(y[1024:-1024])))  # interior, fully normalized
        assert out_step <= 1.5 * in_step

    def test_hard_bin_switch_vs_abrupt_filter_swap(self):
        """The OLA crossfade beats switching filters at a sample boundary."""
        total = 8192
        t = np.arange(total) / FS
        x = np.sin(2 * np.pi * 900.0 * t)
        half = total // 2
        d = np.concatenate([np.full(half, 10.0), np.full(half, 30.0)])
        stage = AirAbsorptionStage(self._bank(), total, air_block=1024)
        y = np.concatenate([stage.feed(x[None], d[None]), stage.finish()], axis=-1)[0]

        fir_a = air_absorption_fir(10.0, FS)
        fir_b = air_absorption_fir(30.0, FS)
        abrupt = np.concatenate(
            [
                apply_fir(x, fir_a, zero_phase_pad=True)[:half],
                apply_fir(x, fir_b, zero_phase_pad=True)[half:],
            ]
        )
        mid = slice(half - 4, half + 4)
        assert np.max(np.abs(np.diff(y[mid]))) < np.max(np.abs(np.diff(abrupt[mid])))

    def test_feed_overflow_and_short_finish_raise(self):
        stage = AirAbsorptionStage(self._bank(), 100)
        stage.feed(np.zeros((1, 60)), np.full((1, 60), 10.0))
        with pytest.raises(ValueError):
            stage.feed(np.zeros((1, 60)), np.full((1, 60), 10.0))
        with pytest.raises(ValueError):
            stage.finish()  # only 60 of 100 fed


class TestSimulatorRegression:
    """The batched-bank simulator pins against the old per-mic scalar path."""

    def _legacy_simulate(self, sim, signal):
        """The pre-bank RoadAcousticsSimulator.simulate, reimplemented."""
        air_cache = {}

        def air_fir(distance):
            key = max(1, int(round(distance / 2.0)))
            if key not in air_cache:
                air_cache[key] = air_absorption_fir(
                    key * 2.0, sim.fs, atmosphere=sim.scene.atmosphere, n_taps=sim.air_taps
                )
            return air_cache[key]

        def apply_air(x, distances):
            n = x.size
            block = min(sim.air_block, n)
            hop = block // 2
            if hop == 0:
                return _legacy_apply_fir(x, air_fir(float(distances.mean())), zero_phase_pad=True)
            win = 0.5 - 0.5 * np.cos(2 * np.pi * np.arange(block) / block)
            out = np.zeros(n + block)
            norm = np.zeros(n + block)
            start = 0
            while start < n:
                stop = min(start + block, n)
                seg = np.zeros(block)
                seg[: stop - start] = x[start:stop]
                seg = _legacy_apply_fir(seg * win, air_fir(float(distances[start:stop].mean())), zero_phase_pad=True)
                out[start : start + block] += seg
                norm[start : start + block] += win
                start += hop
            return (out / np.maximum(norm, 0.5))[:n]

        def render_path(source, reflected):
            mics = sim.scene.array.positions
            d = np.linalg.norm(source[None, :, :] - mics[:, None, :], axis=2)
            out = render_varying_delay(
                signal, d / sim.scene.speed_of_sound * sim.fs,
                interpolation=sim.interpolation, order=sim.order,
            )
            out = out / np.maximum(d, sim.min_distance)
            refl_fir = (
                asphalt_reflection_fir(sim.scene.surface, sim.fs) if reflected else None
            )
            for i in range(mics.shape[0]):
                if reflected:
                    out[i] = _legacy_apply_fir(out[i], refl_fir, zero_phase_pad=True)
                if sim.air_absorption:
                    out[i] = apply_air(out[i], d[i])
            return out

        t = np.arange(signal.size) / sim.fs
        src = sim.scene.trajectory.positions(t)
        img = src.copy()
        img[:, 2] = -img[:, 2]
        out = render_path(src, reflected=False)
        if sim.scene.surface is not None:
            out = out + render_path(img, reflected=True)
        return out

    @pytest.mark.parametrize("n", [1, 250, 4096, 12000])
    def test_full_physics_matches_legacy_scalar_path(self, n):
        mics = MicrophoneArray(
            np.array([[0.0, 0.5, 1.2], [0.4, -0.5, 1.2], [-0.4, -0.5, 1.2]])
        )
        traj = LinearTrajectory([-30.0, 6.0, 0.8], [30.0, 6.0, 0.8], 15.0)
        scene = Scene(traj, mics, surface="dense_asphalt")
        sim = RoadAcousticsSimulator(scene, FS)
        rng = np.random.default_rng(11)
        x = rng.standard_normal(n)
        new = sim.simulate(x)
        legacy = self._legacy_simulate(sim, x)
        assert new.shape == legacy.shape
        assert np.allclose(new, legacy, atol=1e-9, rtol=1e-9)
