"""Work-stealing pool tests: migration, crash windows, pressure, telemetry.

The PR 9 contract, in layers:

- **shard migration is invisible to results.**  A forced :meth:`~repro.
  stream.pool.ShardWorkerPool.migrate` (and an organic steal) moves a shard
  between workers via the same drop → re-register → checkpoint-restore
  machinery :meth:`recover` uses, so step replies continue exactly where
  they left off — never skipping or re-running a hop step.  Migrating a
  shard *back* revives the loser's dormant runner without re-shipping its
  registration payload.
- **the crash window is covered.**  SIGKILLing the thief mid-migration
  (between the loser's drop and the thief's register — the pool's
  ``_migration_hook`` test point) resolves through :meth:`recover` with the
  shard stepped exactly once per step, not zero or two times.
- **admission control counts the join burst.**  :meth:`saturated` takes the
  *incoming* shard count, so two sessions joining in one supervisor step
  cannot overshoot ``max_shards_per_worker``.
- **pressure feeds back.**  The pool reports backlog + steal rate into
  :meth:`~repro.stream.pacer.SharedCapacity.note_pressure`; sustained
  pressure raises the city-wide ``min_batch`` floor every :class:`~repro.
  stream.pacer.Pacer` applies (and relaxes it when the pool drains).
- **telemetry reaches the operator.**  Steal/migration counts, queue-depth
  p95, slab-vs-pipe reply counts and evicted tap reads ride
  ``session_stats`` → :class:`~repro.stream.parallel.ParallelStreamResult`
  → the fleet/city reports; the supervisor's snapshot trail appends JSONL
  health lines mid-run.
- **the headline determinism contract survives scheduling.**  City runs
  with stealing on, stealing off, at workers 0/1/2/4, and across a forced
  mid-run migration all produce fused tracks bit-identical to each
  corridor's standalone run.
"""

import json
import os
import signal
import time

import numpy as np
import pytest

from repro.city import (
    CityScenario,
    CitySupervisor,
    CorridorSpec,
    SessionManager,
    city_report_json,
    corridor_rngs,
    default_scenario,
    format_city_report,
    render_corridor,
)
from repro.core import PipelineConfig
from repro.core.realtime import LatencyStats
from repro.fleet import CorridorStream, FleetScheduler, OracleDetector
from repro.fleet.report import FleetReport, NodeHealth, fleet_report, format_report
from repro.stream import (
    Pacer,
    PacerConfig,
    ParallelFleetStream,
    SharedCapacity,
    ShardWorkerPool,
    WorkerCrashed,
    parallel_supported,
)

needs_processes = pytest.mark.skipif(
    parallel_supported() is not None,
    reason=f"process runtime unavailable: {parallel_supported()}",
)


class CountingRunner:
    """Minimal pool-compatible runner: step counts, state round-trips."""

    def __init__(self, key):
        self.key = key
        self.count = 0

    def step(self):
        self.count += 1
        return (self.key, self.count)

    def state_dict(self):
        return {"count": self.count}

    def load_state_dict(self, state):
        self.count = int(state["count"])


class SlowRunner(CountingRunner):
    """A deliberately slow shard: the skew that makes stealing productive."""

    def __init__(self, key, delay_s=0.25):
        super().__init__(key)
        self.delay_s = delay_s

    def step(self):
        time.sleep(self.delay_s)
        return super().step()

    def state_dict(self):
        return {"count": self.count, "delay_s": self.delay_s}

    def load_state_dict(self, state):
        self.count = int(state["count"])
        self.delay_s = float(state["delay_s"])


def skewed_runners():
    """Six shards for a 2-worker pool: evens (landing on worker 0) slow,
    odds (worker 1) fast — worker 1 drains its queue and must steal."""
    return {
        k: SlowRunner(k) if k % 2 == 0 else CountingRunner(k) for k in range(6)
    }


# --------------------------------------------------------------------------
# Work stealing and forced migration
# --------------------------------------------------------------------------


@pytest.mark.parallel
class TestWorkStealing:
    def test_idle_worker_steals_from_deepest_queue(self):
        """Skewed load: the fast worker drains its own queue, steals the
        slow worker's queued shard, and every shard still steps exactly
        once per step — before and after the migration."""
        with ShardWorkerPool(2) as pool:
            pool.register("a", skewed_runners())
            assert pool.step("a") == {k: (k, 1) for k in range(6)}
            # Worker 1 ran out of odd shards while worker 0 slept on shard
            # 0/2 with shard 4 still queued: exactly one productive steal.
            assert pool.n_steals == 1
            assert pool.n_migrations == 1
            stats = pool.session_stats("a")
            assert stats["n_steals"] == 1 and stats["n_migrations"] == 1
            assert stats["queue_depth_p95"] >= 1.0
            assert pool._assign[("a", 4)] == 1  # the stolen shard moved
            # Exactly-once across the migration: every count continues.
            assert pool.step("a") == {k: (k, 2) for k in range(6)}

    def test_steal_disabled_keeps_static_pinning(self):
        with ShardWorkerPool(2, steal=False) as pool:
            pool.register("a", skewed_runners())
            assert pool.step("a") == {k: (k, 1) for k in range(6)}
            assert pool.n_steals == 0 and pool.n_migrations == 0
            # Round-robin registration placement never changed.
            assert all(pool._assign[("a", k)] == k % 2 for k in range(6))

    def test_forced_migration_continues_counts(self):
        with ShardWorkerPool(2) as pool:
            pool.register("a", {0: CountingRunner(0), 1: CountingRunner(1)})
            assert pool.step("a") == {0: (0, 1), 1: (1, 1)}
            pool.migrate("a", 0, to=1)
            assert pool.owners("a") == [1]
            assert pool.n_migrations == 1 and pool.n_steals == 0
            # Continuation from the checkpoint, not a restart from zero.
            assert pool.step("a") == {0: (0, 2), 1: (1, 2)}

    def test_migrate_back_revives_dormant_without_payload(self):
        """A shard returning to a worker it lived on before is revived from
        that worker's dormant cache: no registration payload re-ships."""
        with ShardWorkerPool(2) as pool:
            pool.register("a", {0: CountingRunner(0)})
            assert pool.step("a") == {0: (0, 1)}
            pool.migrate("a", 0, to=1)
            assert pool.step("a") == {0: (0, 2)}
            sent = []
            original = pool._send
            pool._send = lambda w, msg: (sent.append(msg), original(w, msg))[1]
            pool.migrate("a", 0, to=0)  # back home
            pool._send = original
            registers = [m for m in sent if m[0] == "register"]
            # blob is None: the dormant runner revives in place.
            assert registers == [("register", "a", 0, None, True)]
            assert pool._seeded[("a", 0)] == {0, 1}
            assert pool.step("a") == {0: (0, 3)}

    def test_sigkill_thief_mid_migration_recovers_exactly_once(self):
        """Worker death in the migration window — after the loser dropped
        the shard, before the thief registered it — must resolve through
        recover() with no lost or duplicated hop steps."""
        with ShardWorkerPool(2) as pool:
            pool.register("a", {0: CountingRunner(0), 1: CountingRunner(1)})
            assert pool.step("a") == {0: (0, 1), 1: (1, 1)}

            def kill_thief(shard, src, dst):
                proc = pool._procs[dst]
                os.kill(proc.pid, signal.SIGKILL)
                proc.join()

            pool._migration_hook = kill_thief
            with pytest.raises(WorkerCrashed):
                pool.migrate("a", 0, to=1)
                pool.step("a")  # if the register send buffered, step surfaces it
            pool._migration_hook = None
            assert pool.recover() == 1
            # Both shards restored to their step-1 checkpoints on the
            # respawned worker; counts continue exactly once per step.
            assert pool.step("a") == {0: (0, 2), 1: (1, 2)}
            assert pool.step("a") == {0: (0, 3), 1: (1, 3)}
            assert pool.n_migrations == 1


@needs_processes
class TestMigrateValidation:
    def test_rejections(self):
        with ShardWorkerPool(1) as pool:
            pool.register("a", {0: CountingRunner(0)})
            with pytest.raises(ValueError, match="unknown shard"):
                pool.migrate("a", 9, to=0)
            with pytest.raises(ValueError, match="out of range"):
                pool.migrate("a", 0, to=5)
            pool.step_send("a")
            with pytest.raises(RuntimeError, match="in flight"):
                pool.migrate("a", 0, to=0)
            pool.step_collect("a")

    def test_preloaded_shards_cannot_migrate(self):
        with ShardWorkerPool(1, preload={("a", 0): CountingRunner(0)}) as pool:
            with pytest.raises(ValueError, match="preloaded"):
                pool.migrate("a", 0, to=0)


# --------------------------------------------------------------------------
# Admission control: saturated() counts the join burst
# --------------------------------------------------------------------------


@needs_processes
class TestSaturationCountsIncoming:
    def test_incoming_shards_counted_up_front(self):
        with ShardWorkerPool(1, max_shards_per_worker=2) as pool:
            assert not pool.saturated()
            assert not pool.saturated(incoming=2)
            assert pool.saturated(incoming=3)  # the burst itself overshoots
            pool.register("a", {0: CountingRunner(0)})
            assert not pool.saturated()  # one more still fits
            assert pool.saturated(incoming=2)  # two more would not
            pool.register("b", {0: CountingRunner(0)})
            assert pool.saturated()

    def test_join_burst_cannot_overshoot_pool_capacity(self):
        """Regression: two sessions joining in the same supervisor step.
        The first fits (2 shards on a 3-slot pool); admitting the second's
        2 shards as well would overshoot, so it must degrade — the old
        ``load >= capacity`` check admitted it (4 shards on 3 slots)."""
        specs = tuple(
            CorridorSpec(f"corridor{i}", n_nodes=2, duration_s=0.3, n_shards=2)
            for i in range(2)
        )
        scenario = CityScenario(corridors=specs, seed=7)
        with CitySupervisor(scenario, workers=1, max_shards_per_worker=3) as sup:
            report = sup.run()
            assert report.n_degraded == 1
            assert not sup.manager.sessions["corridor0"].degraded
            assert sup.manager.sessions["corridor1"].degraded


# --------------------------------------------------------------------------
# Capacity pressure signal and the pacer's min-batch floor
# --------------------------------------------------------------------------


class TestCapacityPressure:
    def test_validation(self):
        with pytest.raises(ValueError, match="widen_pressure"):
            SharedCapacity(1, widen_pressure=0.5, shrink_pressure=0.75)
        with pytest.raises(ValueError, match="patience"):
            SharedCapacity(1, patience=0)
        with pytest.raises(ValueError, match="max_min_batch_scale"):
            SharedCapacity(1, max_min_batch_scale=0)
        cap = SharedCapacity(1)
        with pytest.raises(ValueError):
            cap.note_pressure(-1)
        with pytest.raises(ValueError):
            cap.note_pressure(0, steals=-1)

    def test_pressure_is_an_ema_of_backlog_per_slot(self):
        cap = SharedCapacity(4)
        cap.note_pressure(8)  # instantaneous 2.0
        assert cap.pressure() == pytest.approx(0.5)
        cap.note_pressure(8)
        assert cap.pressure() == pytest.approx(0.875)

    def test_steals_count_double(self):
        backlog_only = SharedCapacity(2)
        backlog_only.note_pressure(4)
        steals_only = SharedCapacity(2)
        steals_only.note_pressure(0, steals=2)
        assert steals_only.pressure() == pytest.approx(backlog_only.pressure())

    def test_patience_debounces_the_scale(self):
        cap = SharedCapacity(1, patience=4)
        for _ in range(3):
            cap.note_pressure(100)
        assert cap.min_batch_scale() == 1  # three hot ticks: not yet
        cap.note_pressure(100)
        assert cap.min_batch_scale() == 2  # the fourth commits

    def test_a_calm_tick_resets_the_hot_streak(self):
        cap = SharedCapacity(1, patience=3)
        # hot, calm, hot, hot, calm: never `patience` hot ticks in a row.
        for backlog in (9, 0, 9, 0, 0):
            cap.note_pressure(backlog)
        assert cap.min_batch_scale() == 1
        assert cap.n_pressure_widenings == 0

    def test_scale_ladder_rises_capped_and_walks_back_down(self):
        cap = SharedCapacity(1, patience=2, max_min_batch_scale=4)
        for _ in range(10):
            cap.note_pressure(100)
        assert cap.min_batch_scale() == 4  # 1 -> 2 -> 4, then capped
        assert cap.n_pressure_widenings == 2
        for _ in range(40):
            cap.note_pressure(0)
        assert cap.min_batch_scale() == 1
        assert cap.n_pressure_shrinks == 2

    def test_pacer_min_batch_floor_rises_and_relaxes(self):
        """Sustained pool pressure raises every paced shard's batch to the
        scaled floor; shrink clamps there until the pool cools."""
        cap = SharedCapacity(1, patience=1)
        pacer = Pacer(
            0.01,
            hop_batch=1,
            config=PacerConfig(min_batch=1, max_batch=64),
            capacity=cap,
        )
        cap.note_pressure(100)  # scale 2
        cap.note_pressure(100)  # scale 4
        assert cap.min_batch_scale() == 4
        pacer.observe(0.006, 1)  # inside budget, no headroom: floor only
        assert pacer.batch == 4
        assert pacer.stats().n_floor_raises == 1
        pacer.observe(0.001, 1)  # huge headroom, but clamped at the floor
        assert pacer.batch == 4
        for _ in range(40):
            cap.note_pressure(0)  # pool drains, scale walks back to 1
        assert cap.min_batch_scale() == 1
        pacer.observe(0.001, 1)  # headroom now shrinks below the old floor
        assert pacer.batch == 2
        assert pacer.stats().n_floor_raises == 1

    def test_floor_never_exceeds_max_batch(self):
        cap = SharedCapacity(1, patience=1, max_min_batch_scale=8)
        for _ in range(3):
            cap.note_pressure(100)
        assert cap.min_batch_scale() == 8
        pacer = Pacer(
            0.01,
            hop_batch=1,
            config=PacerConfig(min_batch=3, max_batch=16),
            capacity=cap,
        )
        pacer.observe(0.006, 1)
        assert pacer.batch == 16  # min(3 * 8, max_batch)


@needs_processes
class TestPoolPressureFeed:
    def test_step_send_reports_backlog_to_capacity(self):
        cap = SharedCapacity(1)
        with ShardWorkerPool(1, capacity=cap) as pool:
            pool.register("a", {k: CountingRunner(k) for k in range(6)})
            pool.step("a")
            # Six hop items on one slot at dispatch time: pressure moved.
            assert cap.pressure() > 0.0
            assert pool.session_stats("a")["queue_depth_p95"] >= 1.0

    def test_manager_wires_pool_pressure_to_session_capacity(self):
        with SessionManager(workers=1) as manager:
            assert manager.pool.capacity is manager.capacity


# --------------------------------------------------------------------------
# Tap-miss telemetry through the report layers
# --------------------------------------------------------------------------


class TestTapMissReporting:
    def _stats(self):
        class _NodeStats:
            n_frames = 10
            n_detections = 0
            latency = LatencyStats(1e-4, 2e-4, 3e-4, 0.01)

        class _Run:
            node_stats = {"node_a": _NodeStats()}
            node_results = {"node_a": []}

        return _Run()

    def test_fleet_report_folds_in_tap_misses(self):
        report = fleet_report(
            [], self._stats(), frame_period=0.01, tap_misses={"node_a": 5}
        )
        assert report.node_health[0].n_tap_misses == 5
        assert "tap misses 5" in format_report(report)

    def test_zero_misses_stay_silent(self):
        report = fleet_report([], self._stats(), frame_period=0.01)
        assert report.node_health[0].n_tap_misses == 0
        assert "tap misses" not in format_report(report)

    def test_evicted_tap_reads_surface_in_result(self):
        """An evicted read against a live session's tap is counted and
        attributed per node in the finalized result (the tap capacity
        floor prevents *organic* eviction in a lone in-process session, so
        the eviction is driven explicitly against the real taps)."""
        scenario = default_scenario(
            1, duration_s=0.4, n_nodes=4, seed=3, stagger_steps=0
        )
        spec = scenario.corridors[0]
        rngs = corridor_rngs(scenario)
        recording = render_corridor(spec, scenario, rngs[spec.corridor_id])
        config = PipelineConfig(
            fs=scenario.fs,
            localizer=scenario.localizer,
            n_azimuth=scenario.n_azimuth,
            n_elevation=scenario.n_elevation,
        )
        sched = FleetScheduler(
            recording.scene.nodes,
            config,
            detector=OracleDetector("siren_wail"),
            n_shards=2,
        )
        feed = CorridorStream(recording, chunk_samples=sched.config.hop_length)
        node_ids = [n.node_id for n in recording.scene.nodes]
        with ParallelFleetStream(
            sched, feed.sources(), hop_batch=8, workers=0, tap_window_s=0.1
        ) as session:
            while not session.done:
                session.step()
            # Roll one node's window far past sample 0, then ask for it.
            tap = session.taps[node_ids[0]]
            tap.extend(np.zeros((tap.n_channels, tap.capacity + 4)))
            assert tap.read(0, 4) is None  # evicted
            result = session.finalize()
        sched.close()
        assert set(result.tap_misses) == set(node_ids)
        assert result.tap_misses[node_ids[0]] == 1
        assert all(result.tap_misses[nid] == 0 for nid in node_ids[1:])
        report = fleet_report(
            result.tracks,
            result.as_run_result(),
            frame_period=config.frame_period_s,
            tap_misses=result.tap_misses,
        )
        assert sum(h.n_tap_misses for h in report.node_health) == 1


# --------------------------------------------------------------------------
# Supervisor snapshot trail
# --------------------------------------------------------------------------


class TestSnapshotTrail:
    def test_jsonl_trail_written_every_n_steps(self, tmp_path):
        scenario = default_scenario(
            2, duration_s=0.4, n_nodes=2, seed=9, stagger_steps=1
        )
        path = tmp_path / "trail.jsonl"
        with CitySupervisor(
            scenario, workers=0, snapshot_path=path, snapshot_every=2
        ) as sup:
            sup.run()
            rows = [json.loads(line) for line in path.read_text().splitlines()]
            assert rows, "no snapshots written"
            assert sup.n_snapshots == len(rows)
            steps = [row["step"] for row in rows]
            assert steps == sorted(steps)
            # Every even step, plus the final step regardless of parity.
            assert all(s % 2 == 0 for s in steps[:-1])
            for row in rows:
                assert row["n_sessions"] == 2
                assert {c["corridor_id"] for c in row["corridors"]} == {
                    "corridor0", "corridor1",
                }
            # Mid-run lines show sessions in flight; the last shows the end.
            assert rows[-1]["n_left"] == 2
            assert any(row["n_live"] > 0 for row in rows)

    def test_default_cadence_is_every_step(self, tmp_path):
        scenario = default_scenario(1, duration_s=0.3, n_nodes=2, seed=5)
        path = tmp_path / "trail.jsonl"
        with CitySupervisor(scenario, workers=0, snapshot_path=path) as sup:
            sup.run()
            lines = path.read_text().splitlines()
            assert len(lines) == sup.step_index == sup.n_snapshots

    def test_validation(self, tmp_path):
        scenario = default_scenario(1, duration_s=0.3, n_nodes=2)
        with pytest.raises(ValueError, match="snapshot_every"):
            CitySupervisor(
                scenario, workers=0,
                snapshot_path=tmp_path / "x.jsonl", snapshot_every=0,
            )
        with pytest.raises(ValueError, match="snapshot_path"):
            CitySupervisor(scenario, workers=0, snapshot_every=2)


# --------------------------------------------------------------------------
# City determinism across scheduling policies
# --------------------------------------------------------------------------


def track_signature(tracks):
    """Bit-exact identity signature of a fused track list."""
    return [
        (t.track_id, t.label, t.hits, t.confirmed, tuple(t.history), tuple(sorted(t.nodes)))
        for t in tracks
    ]


def standalone_result(spec, scenario):
    """The reference: the corridor run standalone, in-process (workers=0)."""
    rngs = corridor_rngs(scenario)
    recording = render_corridor(spec, scenario, rngs[spec.corridor_id])
    config = PipelineConfig(
        fs=scenario.fs,
        localizer=scenario.localizer,
        n_azimuth=scenario.n_azimuth,
        n_elevation=scenario.n_elevation,
    )
    sched = FleetScheduler(
        recording.scene.nodes,
        config,
        detector=OracleDetector("siren_wail"),
        n_shards=spec.n_shards,
    )
    feed = CorridorStream(
        recording,
        chunk_samples=sched.config.hop_length,
        drop_prob=spec.drop_prob,
        rng=rngs[spec.corridor_id],
    )
    with ParallelFleetStream(
        sched, feed.sources(), hop_batch=scenario.hop_batch, workers=0
    ) as session:
        result = session.run()
    sched.close()
    return result


@pytest.fixture(scope="module")
def steal_scenario():
    # Two shards per corridor so migration/stealing has something to move.
    specs = tuple(
        CorridorSpec(
            f"corridor{i}", n_nodes=2, duration_s=0.4, n_shards=2, join_step=i
        )
        for i in range(3)
    )
    return CityScenario(corridors=specs, seed=11)


@pytest.fixture(scope="module")
def steal_signatures(steal_scenario):
    return {
        spec.corridor_id: track_signature(
            standalone_result(spec, steal_scenario).tracks
        )
        for spec in steal_scenario.corridors
    }


class TestCityStealDeterminism:
    CONFIGS = [
        pytest.param(0, True, id="w0"),
        pytest.param(1, True, marks=needs_processes, id="w1-steal"),
        pytest.param(1, False, marks=needs_processes, id="w1-pinned"),
        pytest.param(2, True, marks=pytest.mark.parallel, id="w2-steal"),
        pytest.param(2, False, marks=pytest.mark.parallel, id="w2-pinned"),
        pytest.param(4, True, marks=pytest.mark.parallel, id="w4-steal"),
        pytest.param(4, False, marks=pytest.mark.parallel, id="w4-pinned"),
    ]

    @pytest.mark.parametrize("workers,steal", CONFIGS)
    def test_city_matches_standalone(
        self, workers, steal, steal_scenario, steal_signatures
    ):
        """The headline contract: fused tracks are bit-identical to the
        standalone runs whatever the worker count or scheduling policy."""
        with CitySupervisor(steal_scenario, workers=workers, steal=steal) as sup:
            sup.run()
            for cid, want in steal_signatures.items():
                got = track_signature(sup.manager.sessions[cid].result.tracks)
                assert got == want, (
                    f"{cid} diverged (workers={workers}, steal={steal})"
                )

    @pytest.mark.parallel
    def test_identity_across_forced_migration(
        self, steal_scenario, steal_signatures
    ):
        """Forcibly migrate every registered shard of the first live
        session mid-run: results stay bit-identical and the move shows up
        in the corridor's health row."""
        migrated = []
        with CitySupervisor(steal_scenario, workers=2, steal=False) as sup:
            pool = sup.manager.pool

            def on_step(result):
                if result.step_index == 2 and not migrated:
                    for (sid, key), w in sorted(pool._assign.items()):
                        if (sid, key) in pool._payloads:
                            pool.migrate(sid, key, (w + 1) % pool.workers)
                            migrated.append((sid, key))

            sup.run(on_step=on_step)
            assert migrated, "migration hook never fired"
            for cid, want in steal_signatures.items():
                got = track_signature(sup.manager.sessions[cid].result.tracks)
                assert got == want, f"{cid} diverged across forced migration"
            report = sup.report()
            moved = {c.corridor_id: c.n_migrations for c in report.corridors}
            assert sum(moved.values()) == len(migrated)
            assert "moved" in format_city_report(report)
            doc = city_report_json(report)
            for corridor in doc["corridors"]:
                assert {
                    "n_steals", "n_migrations", "queue_depth_p95", "n_tap_misses",
                } <= set(corridor)
                assert corridor["n_migrations"] == moved[corridor["corridor_id"]]

    @needs_processes
    def test_pooled_results_ride_the_slab(self, steal_scenario):
        """Steady state on the pool: every hop reply crossed through the
        shared-memory slab, none fell back to pickled pipe replies."""
        with CitySupervisor(steal_scenario, workers=1) as sup:
            sup.run()
            pool = sup.manager.pool
            assert pool.n_slab_replies > 0
            assert pool.n_pipe_fallbacks == 0
            for session in sup.manager.sessions.values():
                assert not session.degraded
                assert session.result.n_slab_replies > 0
                assert session.result.n_pipe_fallbacks == 0
                assert session.result.n_steals == 0  # one worker: nothing to steal
